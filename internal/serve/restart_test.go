package serve

// The crash-safety property the service is built around: a job
// interrupted mid-run survives a server restart, resumes from its last
// checkpoint with only its remaining budget, and — because snapshot
// resume continues the identical stochastic trajectory — converges to
// the same result an uninterrupted run produces. Both restart tests run
// against each storage backend: the same crash-and-resume semantics,
// and the same results bit for bit, whatever the store.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/storage"
)

func TestKillAndRestartResumesFromCheckpoint(t *testing.T) {
	for name, be := range testStores(t) {
		t.Run(name, func(t *testing.T) { killAndRestartResumes(t, be) })
	}
}

func killAndRestartResumes(t *testing.T, be storage.Store) {
	// Both server lifetimes share the backend instance: the filesystem
	// store is stateless over its root, and the in-memory store IS the
	// persistence, so handing the same one to the restarted server is the
	// mem analogue of pointing a new server at the old data dir.
	cfg := Config{
		Store:           be,
		Workers:         1,
		CheckpointEvery: 5,
		Logf:            t.Logf,
	}
	// A single island keeps the resumed trajectory bit-identical to the
	// uninterrupted one regardless of where the interruption lands
	// relative to migration barriers.
	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  800,
		Islands:      1,
		MigrateEvery: 10,
		Seed:         17,
	}

	// Server 1: accept the job, let it evolve, then go down mid-run.
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	status := postJob(t, ts1.URL, spec)
	interrupted := waitFor(t, ts1.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.Generation >= 40
	})
	if interrupted.State.Terminal() {
		t.Fatalf("job finished (%s) before the test could interrupt it; slow the spec down", interrupted.State)
	}
	ts1.Close()
	stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	cancel()

	// The persisted state must describe a resumable, non-terminal job
	// whose checkpoint is no more than one checkpoint interval behind.
	st := &store{be: be}
	var diskStatus JobStatus
	if err := st.loadJSON(status.ID, statusKey, &diskStatus); err != nil {
		t.Fatal(err)
	}
	if diskStatus.State.Terminal() {
		t.Fatalf("interrupted job persisted as terminal %s", diskStatus.State)
	}
	ckpt, err := be.Get(status.ID, checkpointKey)
	if err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}
	meta, err := evoprot.PeekCheckpoint(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation < diskStatus.Generation-cfg.CheckpointEvery {
		t.Fatalf("checkpoint at generation %d lags interrupted generation %d by more than the interval %d",
			meta.Generation, diskStatus.Generation, cfg.CheckpointEvery)
	}
	t.Logf("interrupted at generation %d, checkpoint at %d", diskStatus.Generation, meta.Generation)

	// Server 2 over the same data dir: recovery re-enqueues and resumes.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Stop(stopCtx); err != nil {
			t.Error(err)
		}
	}()

	done := waitFor(t, ts2.URL, status.ID, 120*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("resumed job finished as %s (error %q)", done.State, done.Error)
	}
	if done.Generation != 800 {
		t.Fatalf("resumed job executed %d generations, want 800", done.Generation)
	}
	if done.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", done.Resumes)
	}

	// The event feed spans both server lifetimes with contiguous offsets:
	// every generation once, plus the interruption's Done event and the
	// final one.
	events := fetchEvents(t, ts2.URL, status.ID, 0)
	if len(events) != 800+2 {
		t.Fatalf("feed has %d events, want %d", len(events), 800+2)
	}
	maxGen, doneEvents := 0, 0
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: restart broke the offset space", i, ev.Seq)
		}
		if ev.Stats.Gen > maxGen {
			maxGen = ev.Stats.Gen
		}
		if ev.Done {
			doneEvents++
		}
	}
	if maxGen != 800 || doneEvents != 2 {
		t.Fatalf("feed reaches generation %d with %d Done events, want 800 and 2", maxGen, doneEvents)
	}

	// Same-quality convergence: an uninterrupted run of the identical
	// spec on the restarted server must land on the identical result —
	// checkpoint resume continues the exact stochastic trajectory.
	ref := postJob(t, ts2.URL, spec)
	refDone := waitFor(t, ts2.URL, ref.ID, 120*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if refDone.State != StateDone {
		t.Fatalf("reference job finished as %s", refDone.State)
	}
	resumedResult := fetchResult(t, ts2.URL, status.ID)
	refResult := fetchResult(t, ts2.URL, ref.ID)
	if resumedResult.Best.Score != refResult.Best.Score {
		t.Fatalf("resumed run converged to %.6f, uninterrupted run to %.6f",
			resumedResult.Best.Score, refResult.Best.Score)
	}
	if resumedResult.DatasetCSV != refResult.DatasetCSV {
		t.Fatal("resumed run's protected dataset differs from the uninterrupted run's")
	}
}

func fetchResult(t *testing.T, base, id string) JobResult {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %s", resp.Status)
	}
	var result JobResult
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	return result
}

// TestKillAndRestartHeterogeneousJob: a niched adaptive multi-island job
// survives a server restart — per-island configs and the adaptive
// controller state come back from the persisted spec and checkpoint, the
// resumed job completes its full budget, and the event feed (including
// the Island -1 epoch events the controller emits) spans both server
// lifetimes with contiguous offsets.
func TestKillAndRestartHeterogeneousJob(t *testing.T) {
	for name, be := range testStores(t) {
		t.Run(name, func(t *testing.T) { killAndRestartHeterogeneous(t, be) })
	}
}

func killAndRestartHeterogeneous(t *testing.T, be storage.Store) {
	cfg := Config{
		Store:           be,
		Workers:         1,
		CheckpointEvery: 5,
		Logf:            t.Logf,
	}
	spec := evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         120,
		Generations:  400,
		Islands:      3,
		MigrateEvery: 10,
		Niches:       "explore-exploit",
		Adaptive:     &evoprot.AdaptiveMigration{},
		Seed:         23,
	}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	status := postJob(t, ts1.URL, spec)
	interrupted := waitFor(t, ts1.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.Generation >= 40
	})
	if interrupted.State.Terminal() {
		t.Fatalf("job finished (%s) before the test could interrupt it; slow the spec down", interrupted.State)
	}
	ts1.Close()
	stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	cancel()

	// The persisted checkpoint must advertise the heterogeneous shape.
	ckpt, err := be.Get(status.ID, checkpointKey)
	if err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}
	meta, err := evoprot.PeekCheckpoint(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Islands != 3 || !meta.Heterogeneous {
		t.Fatalf("checkpoint meta %+v, want 3 heterogeneous islands", meta)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Stop(stopCtx); err != nil {
			t.Error(err)
		}
	}()
	done := waitFor(t, ts2.URL, status.ID, 120*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("resumed heterogeneous job finished as %s (error %q)", done.State, done.Error)
	}
	// Budget arithmetic counts from the checkpoint's MinGeneration so no
	// island ends up short; islands ahead of a mid-epoch checkpoint
	// overshoot by at most the cross-island spread at the interruption,
	// which one epoch bounds (the adaptive interval never exceeds
	// MigrateEvery*4 by default).
	maxOver := 400 + 4*spec.MigrateEvery
	if done.Generation < 400 || done.Generation > maxOver {
		t.Fatalf("resumed job executed %d generations, want 400..%d", done.Generation, maxOver)
	}
	if done.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", done.Resumes)
	}

	// The feed spans both lifetimes contiguously; the adaptive controller's
	// epoch events ride it alongside island traffic.
	events := fetchEvents(t, ts2.URL, status.ID, 0)
	maxGen, doneEvents, epochs := 0, 0, 0
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: restart broke the offset space", i, ev.Seq)
		}
		if ev.Epoch != nil {
			epochs++
			if ev.Island != -1 {
				t.Fatalf("epoch event on island %d", ev.Island)
			}
			continue
		}
		if ev.Stats.Gen > maxGen {
			maxGen = ev.Stats.Gen
		}
		if ev.Done {
			doneEvents++
		}
	}
	if maxGen != done.Generation {
		t.Fatalf("feed reaches generation %d, status reports %d", maxGen, done.Generation)
	}
	if epochs == 0 {
		t.Fatal("no adaptive epoch events survived the restart")
	}
	// One Done per island per lifetime the island ended in: 3 at the
	// interruption plus 3 at completion.
	if doneEvents != 6 {
		t.Fatalf("feed carries %d Done events, want 6", doneEvents)
	}

	result := fetchResult(t, ts2.URL, status.ID)
	if result.Islands != 3 || result.Best.Score <= 0 {
		t.Fatalf("heterogeneous result malformed: %+v", result)
	}
}

// TestRestartRecoversQueuedJobs: a job accepted but never started also
// survives a restart — recovery re-enqueues it from scratch.
func TestRestartRecoversQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1, Logf: t.Logf}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No Start: the job can only queue.
	ts1 := httptest.NewServer(s1.Handler())
	spec := smallSpec()
	status := postJob(t, ts1.URL, spec)
	if status.State != StateQueued {
		t.Fatalf("job state %s with no workers", status.State)
	}
	ts1.Close()
	stopCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	cancel()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Stop(stopCtx); err != nil {
			t.Error(err)
		}
	}()
	done := waitFor(t, ts2.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateDone || done.Resumes != 0 {
		t.Fatalf("recovered queued job: state %s, resumes %d", done.State, done.Resumes)
	}
}
