package serve

// End-to-end tests of the job service over real HTTP: submission,
// status, live/replayed event streams, results, cancellation and
// admission control. The kill-and-restart resumption property has its
// own file (restart_test.go).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"evoprot"
)

// testServer boots a server over a fresh data dir and exposes it over
// real HTTP.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Stop(stopCtx); err != nil {
			t.Errorf("stopping server: %v", err)
		}
	})
	return s, ts
}

// smallSpec is a quick deterministic job: 2 islands, 30 generations.
func smallSpec() evoprot.JobSpec {
	return evoprot.JobSpec{
		Dataset:      "flare",
		Rows:         80,
		Generations:  30,
		Islands:      2,
		MigrateEvery: 5,
		Seed:         7,
	}
}

func postJob(t *testing.T, base string, spec evoprot.JobSpec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit: HTTP %s: %s", resp.Status, buf.String())
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: HTTP %s", resp.Status)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

// waitFor polls the job status until pred holds or the deadline passes.
func waitFor(t *testing.T, base, id string, deadline time.Duration, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		status := getStatus(t, base, id)
		if pred(status) {
			return status
		}
		if time.Now().After(end) {
			t.Fatalf("job %s never reached the awaited condition; last status: %+v", id, status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchEvents replays the NDJSON feed from offset and decodes every line.
func fetchEvents(t *testing.T, base, id string, offset uint64) []evoprot.Event {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?offset=%d", base, id, offset))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var events []evoprot.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev evoprot.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestJobLifecycleAndEvents(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	spec := smallSpec()
	status := postJob(t, ts.URL, spec)
	if status.State != StateQueued && status.State != StateRunning {
		t.Fatalf("fresh job state %s", status.State)
	}
	if len(status.Spec.Attributes) == 0 || status.Spec.Grid != "flare" {
		t.Fatalf("spec not normalized at admission: %+v", status.Spec)
	}

	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("job finished as %s (error %q)", done.State, done.Error)
	}
	if done.StopReason != string(evoprot.StopCompleted) {
		t.Fatalf("stop reason %q", done.StopReason)
	}
	if done.Generation != 30 {
		t.Fatalf("generation %d, want 30", done.Generation)
	}
	wantEvents := uint64(2*30 + 2) // per-generation events plus one Done per island
	if done.Events != wantEvents {
		t.Fatalf("events %d, want %d", done.Events, wantEvents)
	}
	if done.Best == nil || done.Best.Score <= 0 {
		t.Fatalf("best-so-far missing from terminal status: %+v", done.Best)
	}
	if done.Started.IsZero() || done.Finished.IsZero() {
		t.Fatal("lifecycle timestamps missing")
	}

	// Full replay: contiguous sequence numbers from 0, decodable lines.
	events := fetchEvents(t, ts.URL, status.ID, 0)
	if uint64(len(events)) != wantEvents {
		t.Fatalf("replayed %d events, want %d", len(events), wantEvents)
	}
	doneEvents := 0
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Done {
			doneEvents++
		}
	}
	if doneEvents != 2 {
		t.Fatalf("%d Done events, want 2", doneEvents)
	}

	// Partial replay from an offset.
	tail := fetchEvents(t, ts.URL, status.ID, 50)
	if uint64(len(tail)) != wantEvents-50 {
		t.Fatalf("offset replay returned %d events, want %d", len(tail), wantEvents-50)
	}
	if tail[0].Seq != 50 {
		t.Fatalf("offset replay starts at seq %d, want 50", tail[0].Seq)
	}

	// SSE framing: ids present, resumable via Last-Event-ID.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+status.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "59")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("sse content type %q", ct)
	}
	sse := new(bytes.Buffer)
	sse.ReadFrom(resp.Body)
	if !strings.Contains(sse.String(), "id: 60\n") {
		t.Fatalf("sse resume after id 59 lacks id 60:\n%s", sse.String())
	}
	if !strings.Contains(sse.String(), "event: end\n") {
		t.Fatal("sse stream missing end marker")
	}
	if strings.Contains(sse.String(), "id: 59\n") {
		t.Fatal("sse resume replayed the already-delivered id 59")
	}

	// Result: summary, trajectory and the protected dataset.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var result JobResult
	if err := json.NewDecoder(resp2.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	if result.State != StateDone || result.StopReason != string(evoprot.StopCompleted) {
		t.Fatalf("result state %s stop %s", result.State, result.StopReason)
	}
	if result.Generations != 30 || len(result.History) != 30 {
		t.Fatalf("result generations %d, history %d", result.Generations, len(result.History))
	}
	if result.Best.Score != done.Best.Score {
		t.Fatalf("result best %.4f, status best %.4f", result.Best.Score, done.Best.Score)
	}
	if result.Best.Origin == "" {
		t.Fatal("result best lacks origin")
	}
	protected, err := evoprot.ReadCSV(strings.NewReader(result.DatasetCSV))
	if err != nil {
		t.Fatalf("result dataset does not parse: %v", err)
	}
	if protected.Rows() != 80 {
		t.Fatalf("protected dataset has %d rows, want 80", protected.Rows())
	}

	// CSV download variant.
	resp3, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "/result?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("csv content type %q", ct)
	}
	csv := new(bytes.Buffer)
	csv.ReadFrom(resp3.Body)
	if csv.String() != result.DatasetCSV {
		t.Fatal("csv download differs from the inlined dataset")
	}

	// The job shows up in the listing.
	resp4, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp4.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != status.ID {
		t.Fatalf("listing: %+v", list.Jobs)
	}
}

// TestInlineCSVJobRuns: an uploaded dataset travels as dataset_csv, is
// persisted at admission, and the job runs to completion from the
// persisted file (regression: the stripped spec used to fail execution-
// time validation with "needs exactly one dataset source").
func TestInlineCSVJobRuns(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	gen, err := evoprot.GenerateDataset("flare", 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := gen.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	attrs, _ := evoprot.ProtectedAttributes("flare")
	spec := evoprot.JobSpec{
		DatasetCSV:   sb.String(),
		Attributes:   attrs,
		Generations:  15,
		Islands:      2,
		MigrateEvery: 5,
		Seed:         11,
	}
	status := postJob(t, ts.URL, spec)
	if status.Spec.DatasetCSV != "" {
		t.Fatal("inline dataset leaked into the persisted spec")
	}
	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateDone {
		t.Fatalf("inline-CSV job finished as %s (error %q)", done.State, done.Error)
	}
	result := fetchResult(t, ts.URL, status.ID)
	if result.Islands != 2 || result.Best.Score <= 0 {
		t.Fatalf("inline-CSV result: %+v", result.Best)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := map[string]struct {
		body string
		code int
	}{
		"no source":       {`{}`, http.StatusBadRequest},
		"unknown field":   {`{"dataset":"flare","turbo":true}`, http.StatusBadRequest},
		"bad dataset":     {`{"dataset":"census"}`, http.StatusBadRequest},
		"bad aggregator":  {`{"dataset":"flare","aggregator":"median"}`, http.StatusBadRequest},
		"csv sans attrs":  {`{"dataset_csv":"A\nx\n"}`, http.StatusBadRequest},
		"rows unbounded":  {`{"dataset":"flare","rows":999999999}`, http.StatusBadRequest},
		"forbidden paths": {`{"dataset_path":"/etc/passwd","attributes":["A"]}`, http.StatusForbidden},
		"bad json":        {`{`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr apiError
		json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: HTTP %d, want %d", name, resp.StatusCode, tc.code)
		}
		if apiErr.Error == "" {
			t.Errorf("%s: no error body", name)
		}
	}

	// Unknown job ids 404 across the read endpoints.
	for _, path := range []string{"/v1/jobs/jdeadbeef", "/v1/jobs/jdeadbeef/events", "/v1/jobs/jdeadbeef/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	spec := smallSpec()
	spec.Generations = 50000 // far more than the test will allow to run
	status := postJob(t, ts.URL, spec)

	// Let it evolve a little before cancelling.
	waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State == StateRunning && s.Generation >= 5
	})
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+status.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %s", resp.Status)
	}

	done := waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.State != StateCancelled {
		t.Fatalf("cancelled job finished as %s", done.State)
	}
	if done.StopReason != string(evoprot.StopCancelled) {
		t.Fatalf("stop reason %q", done.StopReason)
	}
	if done.Best == nil {
		t.Fatal("cancellation dropped the partial best")
	}

	// The partial result is kept and served.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("result of cancelled job: HTTP %s", resp2.Status)
	}
	var result JobResult
	if err := json.NewDecoder(resp2.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	if result.State != StateCancelled || result.DatasetCSV == "" {
		t.Fatalf("partial result incomplete: state %s, dataset %d bytes", result.State, len(result.DatasetCSV))
	}

	// Cancelling again is a no-op, not an error.
	req2, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+status.ID, nil)
	resp3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat cancel: HTTP %s", resp3.Status)
	}
}

func TestQueueAdmissionControl(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	long := smallSpec()
	long.Generations = 50000

	// Job 1 occupies the only worker.
	j1 := postJob(t, ts.URL, long)
	waitFor(t, ts.URL, j1.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State == StateRunning
	})
	// Job 2 occupies the only queue slot; a cancelled-while-queued job
	// never runs.
	j2 := postJob(t, ts.URL, long)

	// Job 3 is refused.
	body, _ := json.Marshal(long)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: HTTP %d, want 503", resp.StatusCode)
	}

	// Cancel the queued job, then the running one; the worker must skip
	// the dead queue entry.
	for _, id := range []string{j2.ID, j1.ID} {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	done2 := waitFor(t, ts.URL, j2.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done2.State != StateCancelled || done2.Generation != 0 {
		t.Fatalf("queued job cancelled as %s at generation %d", done2.State, done2.Generation)
	}
	// A never-run job has no result.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + j2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("result of never-run job: HTTP %d, want 404", resp2.StatusCode)
	}
	waitFor(t, ts.URL, j1.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
}

func TestResultBeforeTerminalConflicts(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	spec := smallSpec()
	spec.Generations = 50000
	status := postJob(t, ts.URL, spec)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result fetch: HTTP %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+status.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	waitFor(t, ts.URL, status.ID, 60*time.Second, func(s JobStatus) bool {
		return s.State.Terminal()
	})
}
