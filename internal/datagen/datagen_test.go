package datagen

import (
	"math"
	"testing"

	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// paperShape records the shapes the paper reports in §3.
var paperShape = []struct {
	name      string
	rows      int
	attrs     int
	protected map[string]int // attribute -> category count
}{
	{"housing", 1000, 11, map[string]int{"BUILT": 25, "DEGREE": 8, "GRADE1": 21}},
	{"german", 1000, 13, map[string]int{"EXISTACC": 5, "SAVINGS": 6, "PRESEMPLOY": 6}},
	{"flare", 1066, 13, map[string]int{"CLASS": 8, "LARGSPOT": 7, "SPOTDIST": 5}},
	{"adult", 1000, 8, map[string]int{"EDUCATION": 16, "MARITAL-STATUS": 7, "OCCUPATION": 14}},
}

func TestPaperShapes(t *testing.T) {
	for _, c := range paperShape {
		d, err := ByName(c.name, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if d.Rows() != c.rows {
			t.Errorf("%s: rows = %d, want %d", c.name, d.Rows(), c.rows)
		}
		if d.Cols() != c.attrs {
			t.Errorf("%s: attrs = %d, want %d", c.name, d.Cols(), c.attrs)
		}
		for name, card := range c.protected {
			i, ok := d.Schema().IndexOf(name)
			if !ok {
				t.Errorf("%s: missing protected attribute %s", c.name, name)
				continue
			}
			if got := d.Schema().Attr(i).Cardinality(); got != card {
				t.Errorf("%s: |%s| = %d, want %d", c.name, name, got, card)
			}
		}
	}
}

func TestProtectedAttrsResolve(t *testing.T) {
	for _, name := range Names() {
		attrs, err := ProtectedAttrs(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(attrs) != 3 {
			t.Fatalf("%s: %d protected attrs, want 3", name, len(attrs))
		}
		d := MustByName(name, 100, 7)
		if _, err := d.Schema().Indices(attrs...); err != nil {
			t.Errorf("%s: protected attrs do not resolve: %v", name, err)
		}
	}
}

func TestProtectedAttrsUnknown(t *testing.T) {
	if _, err := ProtectedAttrs("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := ByName("nope", 0, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := MustByName(name, 200, 42)
		b := MustByName(name, 200, 42)
		if !a.Equal(b) {
			t.Errorf("%s: same seed produced different data", name)
		}
		c := MustByName(name, 200, 43)
		if a.Equal(c) {
			t.Errorf("%s: different seeds produced identical data", name)
		}
	}
}

func TestValidity(t *testing.T) {
	for _, name := range Names() {
		d := MustByName(name, 0, 5)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCustomRows(t *testing.T) {
	d := MustByName("adult", 37, 1)
	if d.Rows() != 37 {
		t.Fatalf("rows = %d, want 37", d.Rows())
	}
}

// TestMarginalsAreSkewed: the generators must not produce uniform columns —
// linkage and contingency measures need realistic skew.
func TestMarginalsAreSkewed(t *testing.T) {
	for _, name := range Names() {
		d := MustByName(name, 0, 11)
		skewedCols := 0
		for c := 0; c < d.Cols(); c++ {
			card := d.Schema().Attr(c).Cardinality()
			if card < 3 {
				continue
			}
			h := stats.Entropy(stats.Freq(d.Column(c), card))
			if h < 0.97*math.Log2(float64(card)) {
				skewedCols++
			}
		}
		if skewedCols < d.Cols()/2 {
			t.Errorf("%s: only %d/%d columns are skewed", name, skewedCols, d.Cols())
		}
	}
}

// mutualInformation estimates I(X;Y) in bits from two columns.
func mutualInformation(d *dataset.Dataset, x, y int) float64 {
	cx := d.Schema().Attr(x).Cardinality()
	cy := d.Schema().Attr(y).Cardinality()
	joint := make([]int, cx*cy)
	colX, colY := d.Column(x), d.Column(y)
	for r := range colX {
		joint[colX[r]*cy+colY[r]]++
	}
	hx := stats.Entropy(stats.Freq(colX, cx))
	hy := stats.Entropy(stats.Freq(colY, cy))
	hxy := stats.Entropy(joint)
	return hx + hy - hxy
}

// TestCoupledAttributesCorrelate: coupled pairs must carry real dependency
// (mutual information well above the independence baseline).
func TestCoupledAttributesCorrelate(t *testing.T) {
	cases := []struct {
		dataset string
		a, b    string
	}{
		{"adult", "EDUCATION", "OCCUPATION"},
		{"flare", "CLASS", "LARGSPOT"},
		{"german", "EXISTACC", "SAVINGS"},
		{"housing", "DEGREE", "GRADE1"},
	}
	for _, c := range cases {
		d := MustByName(c.dataset, 0, 3)
		idx, err := d.Schema().Indices(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		mi := mutualInformation(d, idx[0], idx[1])
		if mi < 0.05 {
			t.Errorf("%s: I(%s;%s) = %.4f bits, want >= 0.05", c.dataset, c.a, c.b, mi)
		}
	}
}

// TestAllCategoriesRepresented: at paper scale, the bulk of each protected
// domain should actually occur in the data, otherwise masking grids would
// operate on phantom categories.
func TestAllCategoriesRepresented(t *testing.T) {
	for _, c := range paperShape {
		d := MustByName(c.name, 0, 9)
		for name := range c.protected {
			i, _ := d.Schema().IndexOf(name)
			card := d.Schema().Attr(i).Cardinality()
			freq := stats.Freq(d.Column(i), card)
			present := 0
			for _, f := range freq {
				if f > 0 {
					present++
				}
			}
			if present < card*3/4 {
				t.Errorf("%s/%s: only %d/%d categories occur", c.name, name, present, card)
			}
		}
	}
}

func TestDefaultRows(t *testing.T) {
	if DefaultRows("flare") != 1066 {
		t.Fatal("flare default rows")
	}
	if DefaultRows("adult") != 1000 {
		t.Fatal("adult default rows")
	}
}
