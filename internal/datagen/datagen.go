// Package datagen synthesizes the four categorical evaluation datasets the
// paper draws from the UCI repository: the 1993 U.S. Housing Survey, German
// Credit, Solar Flare, and Adult.
//
// The UCI files themselves are not redistributable here, so each generator
// rebuilds a file with the same shape: identical record counts, attribute
// counts, attribute names and per-attribute category counts (the paper
// reports these exactly for the protected attributes), skewed marginal
// distributions, and cross-attribute correlations induced by a seeded
// dependency chain. All masking methods, information-loss and
// disclosure-risk measures, and both evolutionary operators act only on
// this categorical structure, so the substitution preserves the behaviour
// the paper evaluates (see DESIGN.md §3). Real UCI CSVs can be used instead
// via dataset.ReadCSV.
//
// Generation model: attributes are sampled left to right. Attribute i draws
// either (with probability coupling) a value tied to its parent attribute —
// the parent's category index rescaled to this domain plus a small jitter —
// or (otherwise) an independent draw from a rotated power-law marginal.
// This yields strong, realistic contingency structure between related
// attributes (education↔occupation, spot class↔spot size, ...), which is
// what record-linkage attacks and contingency-table losses feed on.
package datagen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"evoprot/internal/dataset"
)

// attrSpec describes one synthetic attribute.
type attrSpec struct {
	name     string
	cats     []string
	ordered  bool
	skew     float64 // power-law exponent of the marginal (0 = uniform)
	peak     float64 // relative position in [0,1] of the marginal's mode
	parent   int     // index of the attribute this one is coupled to; -1 if none
	coupling float64 // probability of drawing from the parent instead of the marginal
	jitter   int     // radius of the jitter added to parent-derived values
}

// generate samples a dataset from the specs. Everything is driven by a
// single seeded PCG stream, so a (name, rows, seed) triple identifies a
// dataset exactly.
func generate(specs []attrSpec, rows int, seed uint64) *dataset.Dataset {
	attrs := make([]*dataset.Attribute, len(specs))
	for i, s := range specs {
		attrs[i] = dataset.MustAttribute(s.name, s.cats, s.ordered)
	}
	schema := dataset.MustSchema(attrs...)
	d := dataset.New(schema, rows)

	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	cdfs := make([][]float64, len(specs))
	for i, s := range specs {
		cdfs[i] = marginalCDF(len(s.cats), s.skew, s.peak)
	}

	row := make([]int, len(specs))
	for r := 0; r < rows; r++ {
		for i, s := range specs {
			var v int
			if s.parent >= 0 && rng.Float64() < s.coupling {
				v = fromParent(rng, row[s.parent], len(specs[s.parent].cats), len(s.cats), s.jitter)
			} else {
				v = sampleCDF(rng, cdfs[i])
			}
			row[i] = v
			d.Set(r, i, v)
		}
	}
	return d
}

// marginalCDF builds the cumulative distribution of a power-law pmf
// p(k) ∝ 1/(1+distance from mode)^skew whose mode sits at peak*(card-1).
func marginalCDF(card int, skew, peak float64) []float64 {
	mode := int(peak * float64(card-1))
	weights := make([]float64, card)
	total := 0.0
	for k := 0; k < card; k++ {
		d := float64(abs(k - mode))
		w := 1.0 / math.Pow(1+d, skew)
		weights[k] = w
		total += w
	}
	cdf := make([]float64, card)
	cum := 0.0
	for k, w := range weights {
		cum += w / total
		cdf[k] = cum
	}
	cdf[card-1] = 1 // guard against rounding
	return cdf
}

func sampleCDF(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	// Domains are small (<= 25); linear scan beats binary search setup.
	for k, c := range cdf {
		if u <= c {
			return k
		}
	}
	return len(cdf) - 1
}

// fromParent rescales the parent's category index into this attribute's
// domain and jitters it, clamping to the domain.
func fromParent(rng *rand.Rand, pv, pcard, card, jitter int) int {
	var v int
	if pcard <= 1 {
		v = 0
	} else {
		v = pv * (card - 1) / (pcard - 1)
	}
	if jitter > 0 {
		v += rng.IntN(2*jitter+1) - jitter
	}
	if v < 0 {
		v = 0
	}
	if v >= card {
		v = card - 1
	}
	return v
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// seqLabels returns n labels "<prefix>01".."<prefix>n" with 2-digit padding.
func seqLabels(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i+1)
	}
	return out
}

// yearBands returns n consecutive year-range labels of the given width
// starting at first, e.g. "1919-1921".
func yearBands(first, width, n int) []string {
	out := make([]string, n)
	for i := range out {
		lo := first + i*width
		out[i] = fmt.Sprintf("%d-%d", lo, lo+width-1)
	}
	return out
}

// Names returns the dataset names understood by ByName, in the paper's
// order of introduction.
func Names() []string { return []string{"housing", "german", "flare", "adult"} }

// DefaultRows returns the paper's record count for the named dataset.
func DefaultRows(name string) int {
	if name == "flare" {
		return 1066
	}
	return 1000
}

// ProtectedAttrs returns the names of the three attributes the paper
// protects in the named dataset.
func ProtectedAttrs(name string) ([]string, error) {
	switch name {
	case "housing":
		return []string{"BUILT", "DEGREE", "GRADE1"}, nil
	case "german":
		return []string{"EXISTACC", "SAVINGS", "PRESEMPLOY"}, nil
	case "flare":
		return []string{"CLASS", "LARGSPOT", "SPOTDIST"}, nil
	case "adult":
		return []string{"EDUCATION", "MARITAL-STATUS", "OCCUPATION"}, nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (have %v)", name, Names())
	}
}

// ByName generates the named dataset with the given number of rows (0 means
// the paper's record count) and seed.
func ByName(name string, rows int, seed uint64) (*dataset.Dataset, error) {
	if rows <= 0 {
		rows = DefaultRows(name)
	}
	switch name {
	case "housing":
		return Housing(rows, seed), nil
	case "german":
		return German(rows, seed), nil
	case "flare":
		return Flare(rows, seed), nil
	case "adult":
		return Adult(rows, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (have %v)", name, Names())
	}
}

// MustByName is ByName that panics on error; for statically-known names.
func MustByName(name string, rows int, seed uint64) *dataset.Dataset {
	d, err := ByName(name, rows, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Housing generates a synthetic stand-in for the 1993 U.S. Housing Survey
// extract: 11 categorical attributes; protected attributes BUILT (25
// categories), DEGREE (8) and GRADE1 (21), as reported in the paper.
func Housing(rows int, seed uint64) *dataset.Dataset {
	specs := []attrSpec{
		{name: "BUILT", cats: yearBands(1919, 3, 25), ordered: true, skew: 0.8, peak: 0.7, parent: -1},
		{name: "TENURE", cats: []string{"owned", "rented", "no-cash-rent"}, skew: 0.9, peak: 0, parent: 0, coupling: 0.35, jitter: 1},
		{name: "TYPE", cats: []string{"house", "apartment", "mobile-home", "boat-rv", "other"}, skew: 1.2, peak: 0, parent: 1, coupling: 0.45, jitter: 1},
		{name: "DEGREE", cats: []string{"none", "high-school", "some-college", "associate", "bachelor", "master", "professional", "doctorate"}, ordered: true, skew: 0.9, peak: 0.2, parent: -1},
		{name: "GRADE1", cats: seqLabels("grade", 21), ordered: true, skew: 0.6, peak: 0.6, parent: 3, coupling: 0.6, jitter: 2},
		{name: "ROOMS", cats: seqLabels("rooms", 9), ordered: true, skew: 0.7, peak: 0.45, parent: 1, coupling: 0.4, jitter: 1},
		{name: "BEDRMS", cats: seqLabels("bedrms", 6), ordered: true, skew: 0.7, peak: 0.4, parent: 5, coupling: 0.7, jitter: 1},
		{name: "FUEL", cats: []string{"gas", "electricity", "fuel-oil", "coal", "wood", "solar", "other"}, skew: 1.1, peak: 0, parent: 2, coupling: 0.3, jitter: 1},
		{name: "REGION", cats: []string{"northeast", "midwest", "south", "west"}, skew: 0.3, peak: 0.6, parent: -1},
		{name: "METRO", cats: []string{"central-city", "suburb", "rural"}, skew: 0.4, peak: 0.35, parent: 8, coupling: 0.3, jitter: 1},
		{name: "INCGRP", cats: seqLabels("inc", 7), ordered: true, skew: 0.6, peak: 0.3, parent: 3, coupling: 0.5, jitter: 1},
	}
	return generate(specs, rows, seed)
}

// German generates a synthetic stand-in for the German Credit categorical
// extract: 13 categorical attributes; protected attributes EXISTACC (5
// categories), SAVINGS (6) and PRESEMPLOY (6), as reported in the paper.
func German(rows int, seed uint64) *dataset.Dataset {
	specs := []attrSpec{
		{name: "EXISTACC", cats: []string{"no-account", "lt-0dm", "0-200dm", "ge-200dm", "salary-account"}, ordered: true, skew: 1.1, peak: 0.25, parent: -1},
		{name: "CREDITHIST", cats: []string{"no-credits", "all-paid", "existing-paid", "delayed", "critical"}, skew: 1.2, peak: 0.5, parent: 0, coupling: 0.35, jitter: 1},
		{name: "PURPOSE", cats: []string{"new-car", "used-car", "furniture", "radio-tv", "appliances", "repairs", "education", "retraining", "business", "other"}, skew: 1.0, peak: 0.25, parent: -1},
		{name: "SAVINGS", cats: []string{"no-savings", "lt-100dm", "100-500dm", "500-1000dm", "ge-1000dm", "unknown"}, ordered: true, skew: 1.2, peak: 0.15, parent: 0, coupling: 0.45, jitter: 1},
		{name: "PRESEMPLOY", cats: []string{"unemployed", "lt-1yr", "1-4yrs", "4-7yrs", "7-10yrs", "ge-10yrs"}, ordered: true, skew: 1.0, peak: 0.45, parent: -1},
		{name: "PERSONAL", cats: []string{"male-single", "male-married", "female-single", "female-married"}, skew: 1.1, peak: 0.15, parent: -1},
		{name: "OTHERPARTIES", cats: []string{"none", "co-applicant", "guarantor"}, skew: 1.8, peak: 0, parent: -1},
		{name: "PROPERTY", cats: []string{"real-estate", "savings-insurance", "car-other", "unknown"}, skew: 1.0, peak: 0.35, parent: 3, coupling: 0.4, jitter: 1},
		{name: "OTHERPLANS", cats: []string{"bank", "stores", "none"}, skew: 1.5, peak: 1, parent: -1},
		{name: "HOUSING", cats: []string{"rent", "own", "for-free"}, skew: 1.2, peak: 0.5, parent: 7, coupling: 0.45, jitter: 1},
		{name: "JOB", cats: []string{"unskilled-nonres", "unskilled-res", "skilled", "management"}, skew: 1.1, peak: 0.6, parent: 4, coupling: 0.5, jitter: 1},
		{name: "TELEPHONE", cats: []string{"none", "registered"}, skew: 0.8, peak: 0, parent: 10, coupling: 0.35, jitter: 0},
		{name: "FOREIGN", cats: []string{"yes", "no"}, skew: 2.0, peak: 1, parent: -1},
	}
	return generate(specs, rows, seed)
}

// Flare generates a synthetic stand-in for the Solar Flare dataset: 13
// categorical attributes; protected attributes CLASS (8 categories),
// LARGSPOT (7) and SPOTDIST (5), as reported in the paper.
func Flare(rows int, seed uint64) *dataset.Dataset {
	specs := []attrSpec{
		{name: "CLASS", cats: []string{"A", "B", "C", "D", "E", "F", "H", "X"}, ordered: true, skew: 1.0, peak: 0.3, parent: -1},
		{name: "LARGSPOT", cats: []string{"X", "R", "S", "A", "H", "K", "W"}, ordered: true, skew: 0.9, peak: 0.35, parent: 0, coupling: 0.6, jitter: 1},
		{name: "SPOTDIST", cats: []string{"X", "O", "I", "C", "M"}, ordered: true, skew: 1.1, peak: 0.25, parent: 0, coupling: 0.55, jitter: 1},
		{name: "ACTIVITY", cats: []string{"reduced", "unchanged"}, skew: 1.2, peak: 0, parent: -1},
		{name: "EVOLUTION", cats: []string{"decay", "no-growth", "growth"}, skew: 1.0, peak: 0.7, parent: 0, coupling: 0.3, jitter: 1},
		{name: "PREVACT", cats: []string{"nothing", "one-m1", "more-m1"}, skew: 1.6, peak: 0, parent: -1},
		{name: "HISTCOMPLEX", cats: []string{"yes", "no"}, skew: 0.5, peak: 1, parent: 0, coupling: 0.4, jitter: 0},
		{name: "BECAMECOMPLEX", cats: []string{"yes", "no"}, skew: 1.0, peak: 1, parent: 6, coupling: 0.5, jitter: 0},
		{name: "AREA", cats: []string{"small", "large"}, skew: 1.1, peak: 0, parent: 1, coupling: 0.45, jitter: 0},
		{name: "AREALARGEST", cats: []string{"lt-5", "ge-5"}, skew: 1.3, peak: 0, parent: 8, coupling: 0.6, jitter: 0},
		{name: "CFLARES", cats: []string{"c0", "c1", "c2plus"}, ordered: true, skew: 1.0, peak: 0, parent: 0, coupling: 0.35, jitter: 1},
		{name: "MFLARES", cats: []string{"m0", "m1", "m2plus"}, ordered: true, skew: 1.5, peak: 0, parent: 10, coupling: 0.4, jitter: 1},
		{name: "XFLARES", cats: []string{"x0", "x1plus"}, skew: 2.0, peak: 0, parent: 11, coupling: 0.4, jitter: 0},
	}
	return generate(specs, rows, seed)
}

// Adult generates a synthetic stand-in for the Adult (census income)
// categorical extract: 8 categorical attributes; protected attributes
// EDUCATION (16 categories), MARITAL-STATUS (7) and OCCUPATION (14), as
// reported in the paper.
func Adult(rows int, seed uint64) *dataset.Dataset {
	specs := []attrSpec{
		{name: "WORKCLASS", cats: []string{"private", "self-emp-not-inc", "self-emp-inc", "federal-gov", "local-gov", "state-gov", "without-pay", "never-worked"}, skew: 1.2, peak: 0, parent: -1},
		{name: "EDUCATION", cats: []string{"preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th", "12th", "hs-grad", "some-college", "assoc-voc", "assoc-acdm", "bachelors", "masters", "prof-school", "doctorate"}, ordered: true, skew: 0.7, peak: 0.55, parent: -1},
		{name: "MARITAL-STATUS", cats: []string{"never-married", "married-civ-spouse", "divorced", "married-spouse-absent", "separated", "married-af-spouse", "widowed"}, skew: 0.8, peak: 0.15, parent: -1},
		{name: "OCCUPATION", cats: []string{"tech-support", "craft-repair", "other-service", "sales", "exec-managerial", "prof-specialty", "handlers-cleaners", "machine-op-inspct", "adm-clerical", "farming-fishing", "transport-moving", "priv-house-serv", "protective-serv", "armed-forces"}, skew: 0.4, peak: 0.3, parent: 1, coupling: 0.55, jitter: 2},
		{name: "RELATIONSHIP", cats: []string{"wife", "own-child", "husband", "not-in-family", "other-relative", "unmarried"}, skew: 0.4, peak: 0.4, parent: 2, coupling: 0.55, jitter: 1},
		{name: "RACE", cats: []string{"white", "asian-pac-islander", "amer-indian-eskimo", "other", "black"}, skew: 1.4, peak: 0, parent: -1},
		{name: "SEX", cats: []string{"female", "male"}, skew: 0.25, peak: 1, parent: -1},
		{name: "INCOME", cats: []string{"le-50k", "gt-50k"}, skew: 0.8, peak: 0, parent: 1, coupling: 0.5, jitter: 0},
	}
	return generate(specs, rows, seed)
}
