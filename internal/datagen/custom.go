package datagen

import (
	"fmt"

	"evoprot/internal/dataset"
)

// AttrSpec describes one attribute of a custom synthetic dataset — the
// same generation model the four built-in datasets use (see the package
// comment): a rotated power-law marginal optionally coupled to an earlier
// attribute.
type AttrSpec struct {
	// Name is the attribute name; must be unique within the dataset.
	Name string
	// Categories is the finite domain, in order.
	Categories []string
	// Ordered marks the domain as carrying a meaningful total order.
	Ordered bool
	// Skew is the power-law exponent of the marginal; 0 is uniform,
	// 1–2 is typical survey data. Must be >= 0.
	Skew float64
	// Peak positions the marginal's mode at Peak*(len(Categories)-1);
	// must lie in [0,1].
	Peak float64
	// Parent is the index of an earlier attribute this one is coupled to,
	// or -1 for none.
	Parent int
	// Coupling is the probability of deriving the value from the parent
	// instead of the marginal; must lie in [0,1] and be 0 when Parent<0.
	Coupling float64
	// Jitter is the radius of the noise added to parent-derived values.
	// Must be >= 0.
	Jitter int
}

// Custom generates a synthetic categorical dataset from the given specs.
// It validates the dependency structure (parents must precede children)
// so generation is always a single left-to-right pass.
func Custom(specs []AttrSpec, rows int, seed uint64) (*dataset.Dataset, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("datagen: no attribute specs")
	}
	if rows <= 0 {
		return nil, fmt.Errorf("datagen: rows must be positive, got %d", rows)
	}
	internal := make([]attrSpec, len(specs))
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("datagen: spec %d has no name", i)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("datagen: duplicate attribute name %q", s.Name)
		}
		seen[s.Name] = true
		if _, err := dataset.NewAttribute(s.Name, s.Categories, s.Ordered); err != nil {
			return nil, err
		}
		if s.Skew < 0 {
			return nil, fmt.Errorf("datagen: %s has negative skew %v", s.Name, s.Skew)
		}
		if s.Peak < 0 || s.Peak > 1 {
			return nil, fmt.Errorf("datagen: %s has peak %v outside [0,1]", s.Name, s.Peak)
		}
		if s.Parent >= i {
			return nil, fmt.Errorf("datagen: %s has parent %d, must reference an earlier attribute", s.Name, s.Parent)
		}
		if s.Parent < -1 {
			return nil, fmt.Errorf("datagen: %s has parent %d, want -1 or an index", s.Name, s.Parent)
		}
		if s.Coupling < 0 || s.Coupling > 1 {
			return nil, fmt.Errorf("datagen: %s has coupling %v outside [0,1]", s.Name, s.Coupling)
		}
		if s.Parent < 0 && s.Coupling != 0 {
			return nil, fmt.Errorf("datagen: %s has coupling %v but no parent", s.Name, s.Coupling)
		}
		if s.Jitter < 0 {
			return nil, fmt.Errorf("datagen: %s has negative jitter %d", s.Name, s.Jitter)
		}
		internal[i] = attrSpec{
			name:     s.Name,
			cats:     s.Categories,
			ordered:  s.Ordered,
			skew:     s.Skew,
			peak:     s.Peak,
			parent:   s.Parent,
			coupling: s.Coupling,
			jitter:   s.Jitter,
		}
	}
	return generate(internal, rows, seed), nil
}
