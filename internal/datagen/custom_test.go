package datagen

import (
	"testing"

	"evoprot/internal/stats"
)

func validSpecs() []AttrSpec {
	return []AttrSpec{
		{Name: "region", Categories: []string{"north", "south", "east", "west"}, Skew: 0.8, Peak: 0.3, Parent: -1},
		{Name: "city-size", Categories: []string{"small", "medium", "large"}, Ordered: true, Skew: 0.5, Peak: 0.5, Parent: 0, Coupling: 0.4, Jitter: 1},
		{Name: "income", Categories: []string{"low", "mid", "high"}, Ordered: true, Skew: 1.0, Peak: 0.2, Parent: 1, Coupling: 0.5, Jitter: 1},
	}
}

func TestCustomGeneratesValidData(t *testing.T) {
	d, err := Custom(validSpecs(), 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 300 || d.Cols() != 3 {
		t.Fatalf("shape = %dx%d", d.Rows(), d.Cols())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if name := d.Schema().Attr(1).Name(); name != "city-size" {
		t.Fatalf("attr 1 name = %q", name)
	}
	if !d.Schema().Attr(2).Ordered() {
		t.Fatal("income should be ordered")
	}
}

func TestCustomDeterministic(t *testing.T) {
	a, err := Custom(validSpecs(), 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Custom(validSpecs(), 100, 11)
	if !a.Equal(b) {
		t.Fatal("same seed differs")
	}
	c, _ := Custom(validSpecs(), 100, 12)
	if a.Equal(c) {
		t.Fatal("different seeds identical")
	}
}

func TestCustomCouplingProducesDependency(t *testing.T) {
	d, err := Custom(validSpecs(), 1000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if mi := mutualInformation(d, 1, 2); mi < 0.02 {
		t.Fatalf("I(city-size;income) = %.4f, want >= 0.02", mi)
	}
}

func TestCustomSkewShapesMarginal(t *testing.T) {
	flat := []AttrSpec{{Name: "u", Categories: seqLabels("c", 10), Parent: -1, Skew: 0}}
	spiky := []AttrSpec{{Name: "u", Categories: seqLabels("c", 10), Parent: -1, Skew: 3, Peak: 0}}
	df, _ := Custom(flat, 2000, 3)
	ds, _ := Custom(spiky, 2000, 3)
	hf := stats.Entropy(stats.Freq(df.Column(0), 10))
	hs := stats.Entropy(stats.Freq(ds.Column(0), 10))
	if hs >= hf {
		t.Fatalf("skewed entropy %.3f >= flat entropy %.3f", hs, hf)
	}
}

func TestCustomValidation(t *testing.T) {
	base := validSpecs()
	mutate := func(f func(s []AttrSpec)) []AttrSpec {
		specs := make([]AttrSpec, len(base))
		copy(specs, base)
		f(specs)
		return specs
	}
	cases := map[string][]AttrSpec{
		"empty":           nil,
		"no name":         mutate(func(s []AttrSpec) { s[0].Name = "" }),
		"no categories":   mutate(func(s []AttrSpec) { s[1].Categories = nil }),
		"negative skew":   mutate(func(s []AttrSpec) { s[0].Skew = -1 }),
		"peak > 1":        mutate(func(s []AttrSpec) { s[0].Peak = 1.5 }),
		"forward parent":  mutate(func(s []AttrSpec) { s[0].Parent = 2 }),
		"self parent":     mutate(func(s []AttrSpec) { s[1].Parent = 1 }),
		"parent < -1":     mutate(func(s []AttrSpec) { s[0].Parent = -2 }),
		"coupling > 1":    mutate(func(s []AttrSpec) { s[1].Coupling = 2 }),
		"orphan coupling": mutate(func(s []AttrSpec) { s[0].Coupling = 0.5 }),
		"negative jitter": mutate(func(s []AttrSpec) { s[2].Jitter = -1 }),
		"duplicate names": mutate(func(s []AttrSpec) { s[1].Name = "region" }),
	}
	for name, specs := range cases {
		if _, err := Custom(specs, 10, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Custom(base, 0, 1); err == nil {
		t.Error("zero rows accepted")
	}
}
