package infoloss

// Incremental (delta) evaluation: the evolutionary engine's operators
// change one cell (mutation) or a gene window (crossover) of an otherwise
// already-scored dataset, so rescoring from scratch wastes almost all of
// its work. Measures that can do better implement Incremental: Prepare
// builds a per-masked-file State whose summaries (contingency tables,
// distance sums, transition matrices) support O(changes) patching, and
// Apply advances the state by a change list and returns the new value.
//
// Every state stores exact integer summaries and funnels them through the
// same value helpers the full Loss methods use (ctbilValue, dbilValue,
// ebilTerm), so a delta-evaluated value is bit-for-bit identical to a full
// recompute — the property internal/score relies on and the equivalence
// tests assert.

import (
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// State is an opaque per-masked-dataset summary maintained by an
// Incremental measure. States are single-goroutine values; use Clone to
// branch one (e.g. for an offspring that may be discarded).
type State interface {
	// CloneState returns an independent deep copy.
	CloneState() State
}

// Incremental is the capability interface for measures that can rescore a
// masked dataset in time proportional to the number of changed cells
// rather than the dataset size.
type Incremental interface {
	Measure
	// Prepare builds the incremental state for masked against orig over
	// the protected attrs. A nil state means the measure cannot run
	// incrementally under its current configuration; callers must fall
	// back to Loss.
	Prepare(orig, masked *dataset.Dataset, attrs []int) State
	// Apply advances state by the given cell changes — which must describe
	// edits to the state's masked file, applied in order — and returns the
	// measure's value for the edited file. An empty change list returns
	// the current value. Apply must not retain changes: callers reuse the
	// backing array across calls.
	Apply(state State, changes []dataset.CellChange) float64
}

// Reversible is the capability interface of Incremental measures whose
// states can advance by a change list and then roll back exactly — the
// primitive behind generation-batch evaluation (score.Evaluator
// EvaluateBatch), which scores every offspring of a generation against
// one shared parent state with undo instead of cloning the state per
// offspring.
//
// All three info-loss states are pure functions of the masked columns
// (given the shared original), so undo replays the change list's
// inversions in reverse order through the same exact integer patches:
// the restored state is bit-for-bit the pre-ApplyUndo state.
type Reversible interface {
	Incremental
	// ApplyUndo is Apply with rollback armed: it advances state by
	// changes, returns the measure's value for the edited file, and
	// journals enough to restore the state exactly. At most one
	// ApplyUndo may be pending per state; Undo (or a plain Apply,
	// which commits the pending changes) must intervene before the next.
	ApplyUndo(state State, changes []dataset.CellChange) float64
	// Undo rolls back the pending ApplyUndo, restoring the state bit
	// for bit. With no pending ApplyUndo it is a no-op.
	Undo(state State)
}

// Compile-time capability checks: the whole default battery is
// incremental and reversible.
var (
	_ Reversible = (*CTBIL)(nil)
	_ Reversible = (*DBIL)(nil)
	_ Reversible = (*EBIL)(nil)
)

// undoLog is the shared journal of the info-loss states: a copy of the
// pending change list, replayed inverted and in reverse by Undo. The
// buffer is owned by the state and reused across generations.
type undoLog struct {
	changes []dataset.CellChange
	active  bool
}

// arm records the pending change list. Apply without undo disarms.
func (u *undoLog) arm(changes []dataset.CellChange) {
	u.changes = append(u.changes[:0], changes...)
	u.active = true
}

// --- CTBIL ---

// ctbilTable is one contingency table of the CTBIL state: the masked
// file's cell counts plus the running L1 distance to the original file's
// (immutable, shared) table.
type ctbilTable struct {
	rel   []int // positions into attrs of the table's columns
	cards []int
	orig  map[stats.ContingencyKey]int // shared, never written
	cells map[stats.ContingencyKey]int // owned
	l1    int
}

type ctbilState struct {
	n      int
	attrs  []int
	pos    map[int]int // column index -> position in attrs
	tables []*ctbilTable
	byPos  [][]int // attr position -> indices of tables containing it
	mc     [][]int // masked protected columns, by attr position; owned
	l1     []int   // Apply scratch, lazily built, never shared by clones
	undo   undoLog // pending ApplyUndo journal; never shared by clones
}

// CloneState implements State.
func (s *ctbilState) CloneState() State {
	out := &ctbilState{n: s.n, attrs: s.attrs, pos: s.pos, byPos: s.byPos}
	out.tables = make([]*ctbilTable, len(s.tables))
	for i, t := range s.tables {
		cells := make(map[stats.ContingencyKey]int, len(t.cells))
		for k, v := range t.cells {
			cells[k] = v
		}
		out.tables[i] = &ctbilTable{rel: t.rel, cards: t.cards, orig: t.orig, cells: cells, l1: t.l1}
	}
	out.mc = make([][]int, len(s.mc))
	for i, col := range s.mc {
		own := make([]int, len(col))
		copy(own, col)
		out.mc[i] = own
	}
	return out
}

// Prepare implements Incremental.
func (c *CTBIL) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &ctbilState{n: n, attrs: attrs, pos: make(map[int]int, len(attrs))}
	for a, col := range attrs {
		st.pos[col] = a
	}
	st.mc = make([][]int, len(attrs))
	for a, col := range attrs {
		st.mc[a] = masked.Column(col)
	}
	subsets := stats.SubsetsUpTo(len(attrs), c.maxDimOrDefault())
	st.byPos = make([][]int, len(attrs))
	for _, subset := range subsets {
		cols := make([]int, len(subset))
		for i, rel := range subset {
			cols[i] = attrs[rel]
		}
		cards := orig.Schema().Cardinalities(cols)
		co := make([][]int, len(cols))
		cm := make([][]int, len(cols))
		for i, col := range cols {
			co[i] = orig.Column(col)
			cm[i] = masked.Column(col)
		}
		to := stats.NewContingencyTable(cols, co, cards)
		tm := stats.NewContingencyTable(cols, cm, cards)
		rel := make([]int, len(subset))
		copy(rel, subset)
		t := &ctbilTable{rel: rel, cards: cards, orig: to.Cells, cells: tm.Cells, l1: to.L1Distance(tm)}
		for _, a := range rel {
			st.byPos[a] = append(st.byPos[a], len(st.tables))
		}
		st.tables = append(st.tables, t)
	}
	return st
}

// patchOne advances the tables and masked columns by one cell change.
// The patch is its own inverse under CellChange.Inverted: replaying
// inversions in reverse restores the exact integer summaries.
func (st *ctbilState) patchOne(ch dataset.CellChange) {
	a0 := st.pos[ch.Col]
	for _, ti := range st.byPos[a0] {
		t := st.tables[ti]
		var oldKey, newKey stats.ContingencyKey
		for i, a := range t.rel {
			v := st.mc[a][ch.Row]
			if a == a0 {
				v = ch.Old
			}
			oldKey = oldKey*stats.ContingencyKey(t.cards[i]) + stats.ContingencyKey(v)
			if a == a0 {
				v = ch.New
			}
			newKey = newKey*stats.ContingencyKey(t.cards[i]) + stats.ContingencyKey(v)
		}
		t.bump(oldKey, -1)
		t.bump(newKey, +1)
	}
	st.mc[a0][ch.Row] = ch.New
}

// Apply implements Incremental. A plain Apply commits any pending
// ApplyUndo: the journaled changes become permanent.
func (c *CTBIL) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*ctbilState)
	st.undo.active = false
	for _, ch := range changes {
		st.patchOne(ch)
	}
	if st.l1 == nil {
		st.l1 = make([]int, len(st.tables))
	}
	for i, t := range st.tables {
		st.l1[i] = t.l1
	}
	return ctbilValue(st.l1, st.n)
}

// ApplyUndo implements Reversible.
func (c *CTBIL) ApplyUndo(state State, changes []dataset.CellChange) float64 {
	v := c.Apply(state, changes)
	state.(*ctbilState).undo.arm(changes)
	return v
}

// Undo implements Reversible.
func (c *CTBIL) Undo(state State) {
	st := state.(*ctbilState)
	if !st.undo.active {
		return
	}
	st.undo.active = false
	for k := len(st.undo.changes) - 1; k >= 0; k-- {
		st.patchOne(st.undo.changes[k].Inverted())
	}
}

// bump adjusts one masked cell count by ±1, keeping the L1 distance to the
// original table in sync.
func (t *ctbilTable) bump(key stats.ContingencyKey, delta int) {
	o := t.orig[key]
	m := t.cells[key]
	t.l1 += stats.AbsInt(m+delta-o) - stats.AbsInt(m-o)
	if m+delta == 0 {
		delete(t.cells, key)
	} else {
		t.cells[key] = m + delta
	}
}

// --- DBIL ---

type dbilState struct {
	n     int
	orig  *dataset.Dataset // read-only
	attrs []int
	pos   map[int]int
	sums  []int64 // per attr position: rank-displacement sum or mismatch count
	undo  undoLog // pending ApplyUndo journal; never shared by clones
}

// CloneState implements State.
func (s *dbilState) CloneState() State {
	sums := make([]int64, len(s.sums))
	copy(sums, s.sums)
	return &dbilState{n: s.n, orig: s.orig, attrs: s.attrs, pos: s.pos, sums: sums}
}

// Prepare implements Incremental.
func (d *DBIL) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &dbilState{n: n, orig: orig, attrs: attrs, pos: make(map[int]int, len(attrs)), sums: make([]int64, len(attrs))}
	for a, c := range attrs {
		st.pos[c] = a
		attr := orig.Schema().Attr(c)
		if attr.Ordered() && attr.Cardinality() > 1 {
			for r := 0; r < n; r++ {
				st.sums[a] += int64(stats.AbsInt(orig.At(r, c) - masked.At(r, c)))
			}
		} else {
			for r := 0; r < n; r++ {
				if orig.At(r, c) != masked.At(r, c) {
					st.sums[a]++
				}
			}
		}
	}
	return st
}

// patchOne adjusts one attribute sum by one cell change; exactly
// self-inverse under CellChange.Inverted (integer arithmetic only).
func (st *dbilState) patchOne(ch dataset.CellChange) {
	a := st.pos[ch.Col]
	attr := st.orig.Schema().Attr(ch.Col)
	o := st.orig.At(ch.Row, ch.Col)
	if attr.Ordered() && attr.Cardinality() > 1 {
		st.sums[a] += int64(stats.AbsInt(o-ch.New) - stats.AbsInt(o-ch.Old))
	} else {
		if o != ch.Old {
			st.sums[a]--
		}
		if o != ch.New {
			st.sums[a]++
		}
	}
}

// Apply implements Incremental. A plain Apply commits any pending
// ApplyUndo.
func (d *DBIL) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*dbilState)
	st.undo.active = false
	for _, ch := range changes {
		st.patchOne(ch)
	}
	return dbilValue(st.orig.Schema(), st.attrs, st.sums, st.n)
}

// ApplyUndo implements Reversible.
func (d *DBIL) ApplyUndo(state State, changes []dataset.CellChange) float64 {
	v := d.Apply(state, changes)
	state.(*dbilState).undo.arm(changes)
	return v
}

// Undo implements Reversible.
func (d *DBIL) Undo(state State) {
	st := state.(*dbilState)
	if !st.undo.active {
		return
	}
	st.undo.active = false
	for k := len(st.undo.changes) - 1; k >= 0; k-- {
		st.patchOne(st.undo.changes[k].Inverted())
	}
}

// --- EBIL ---

type ebilState struct {
	n     int
	orig  *dataset.Dataset // read-only
	attrs []int
	pos   map[int]int
	joint [][][]int // per attr position (nil when card < 2): card x card
	terms []float64 // cached ebilTerm per attr position
	dirty []bool    // Apply scratch, lazily built, never shared by clones
	undo  undoLog   // pending ApplyUndo journal; never shared by clones
}

// CloneState implements State.
func (s *ebilState) CloneState() State {
	out := &ebilState{n: s.n, orig: s.orig, attrs: s.attrs, pos: s.pos}
	out.joint = make([][][]int, len(s.joint))
	for a, j := range s.joint {
		if j == nil {
			continue
		}
		card := len(j)
		backing := make([]int, card*card)
		m := make([][]int, card)
		for u := 0; u < card; u++ {
			m[u] = backing[u*card : (u+1)*card]
			copy(m[u], j[u])
		}
		out.joint[a] = m
	}
	out.terms = make([]float64, len(s.terms))
	copy(out.terms, s.terms)
	return out
}

// Prepare implements Incremental.
func (e *EBIL) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &ebilState{
		n: n, orig: orig, attrs: attrs,
		pos:   make(map[int]int, len(attrs)),
		joint: make([][][]int, len(attrs)),
		terms: make([]float64, len(attrs)),
	}
	for a, c := range attrs {
		st.pos[c] = a
		card := orig.Schema().Attr(c).Cardinality()
		if card < 2 {
			continue // mirrors Loss: constant attributes are skipped
		}
		st.joint[a] = stats.JointTransition(orig.Column(c), masked.Column(c), card)
		st.terms[a] = ebilTerm(st.joint[a], card, n)
	}
	return st
}

// patchOne adjusts one joint transition matrix by one cell change and
// marks the attribute's cached term dirty; self-inverse under
// CellChange.Inverted.
func (st *ebilState) patchOne(ch dataset.CellChange) {
	a := st.pos[ch.Col]
	if st.joint[a] == nil {
		return // constant attribute; cannot actually change value
	}
	o := st.orig.At(ch.Row, ch.Col)
	st.joint[a][o][ch.Old]--
	st.joint[a][o][ch.New]++
	st.dirty[a] = true
}

// refreshTerms recomputes the cached ebilTerm of every dirty attribute.
// ebilTerm is a pure function of the (exact, integer) joint matrix, so
// a refresh after undoing the matrix patches restores the pre-apply
// term bit for bit.
func (st *ebilState) refreshTerms() {
	for a := range st.dirty {
		if !st.dirty[a] {
			continue
		}
		st.dirty[a] = false
		st.terms[a] = ebilTerm(st.joint[a], len(st.joint[a]), st.n)
	}
}

// Apply implements Incremental. A plain Apply commits any pending
// ApplyUndo.
func (e *EBIL) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*ebilState)
	st.undo.active = false
	if st.dirty == nil {
		st.dirty = make([]bool, len(st.attrs))
	}
	for _, ch := range changes {
		st.patchOne(ch)
	}
	st.refreshTerms()
	sum := 0.0
	counted := 0
	for a := range st.attrs {
		if st.joint[a] == nil {
			continue
		}
		sum += st.terms[a]
		counted++
	}
	if counted == 0 {
		return 0
	}
	return 100 * sum / float64(counted)
}

// ApplyUndo implements Reversible.
func (e *EBIL) ApplyUndo(state State, changes []dataset.CellChange) float64 {
	v := e.Apply(state, changes)
	state.(*ebilState).undo.arm(changes)
	return v
}

// Undo implements Reversible.
func (e *EBIL) Undo(state State) {
	st := state.(*ebilState)
	if !st.undo.active {
		return
	}
	st.undo.active = false
	for k := len(st.undo.changes) - 1; k >= 0; k-- {
		st.patchOne(st.undo.changes[k].Inverted())
	}
	st.refreshTerms()
}
