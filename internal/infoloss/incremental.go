package infoloss

// Incremental (delta) evaluation: the evolutionary engine's operators
// change one cell (mutation) or a gene window (crossover) of an otherwise
// already-scored dataset, so rescoring from scratch wastes almost all of
// its work. Measures that can do better implement Incremental: Prepare
// builds a per-masked-file State whose summaries (contingency tables,
// distance sums, transition matrices) support O(changes) patching, and
// Apply advances the state by a change list and returns the new value.
//
// Every state stores exact integer summaries and funnels them through the
// same value helpers the full Loss methods use (ctbilValue, dbilValue,
// ebilTerm), so a delta-evaluated value is bit-for-bit identical to a full
// recompute — the property internal/score relies on and the equivalence
// tests assert.

import (
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// State is an opaque per-masked-dataset summary maintained by an
// Incremental measure. States are single-goroutine values; use Clone to
// branch one (e.g. for an offspring that may be discarded).
type State interface {
	// CloneState returns an independent deep copy.
	CloneState() State
}

// Incremental is the capability interface for measures that can rescore a
// masked dataset in time proportional to the number of changed cells
// rather than the dataset size.
type Incremental interface {
	Measure
	// Prepare builds the incremental state for masked against orig over
	// the protected attrs. A nil state means the measure cannot run
	// incrementally under its current configuration; callers must fall
	// back to Loss.
	Prepare(orig, masked *dataset.Dataset, attrs []int) State
	// Apply advances state by the given cell changes — which must describe
	// edits to the state's masked file, applied in order — and returns the
	// measure's value for the edited file. An empty change list returns
	// the current value. Apply must not retain changes: callers reuse the
	// backing array across calls.
	Apply(state State, changes []dataset.CellChange) float64
}

// Compile-time capability checks: the whole default battery is
// incremental.
var (
	_ Incremental = (*CTBIL)(nil)
	_ Incremental = (*DBIL)(nil)
	_ Incremental = (*EBIL)(nil)
)

// --- CTBIL ---

// ctbilTable is one contingency table of the CTBIL state: the masked
// file's cell counts plus the running L1 distance to the original file's
// (immutable, shared) table.
type ctbilTable struct {
	rel   []int // positions into attrs of the table's columns
	cards []int
	orig  map[stats.ContingencyKey]int // shared, never written
	cells map[stats.ContingencyKey]int // owned
	l1    int
}

type ctbilState struct {
	n      int
	attrs  []int
	pos    map[int]int // column index -> position in attrs
	tables []*ctbilTable
	byPos  [][]int // attr position -> indices of tables containing it
	mc     [][]int // masked protected columns, by attr position; owned
	l1     []int   // Apply scratch, lazily built, never shared by clones
}

// CloneState implements State.
func (s *ctbilState) CloneState() State {
	out := &ctbilState{n: s.n, attrs: s.attrs, pos: s.pos, byPos: s.byPos}
	out.tables = make([]*ctbilTable, len(s.tables))
	for i, t := range s.tables {
		cells := make(map[stats.ContingencyKey]int, len(t.cells))
		for k, v := range t.cells {
			cells[k] = v
		}
		out.tables[i] = &ctbilTable{rel: t.rel, cards: t.cards, orig: t.orig, cells: cells, l1: t.l1}
	}
	out.mc = make([][]int, len(s.mc))
	for i, col := range s.mc {
		own := make([]int, len(col))
		copy(own, col)
		out.mc[i] = own
	}
	return out
}

// Prepare implements Incremental.
func (c *CTBIL) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &ctbilState{n: n, attrs: attrs, pos: make(map[int]int, len(attrs))}
	for a, col := range attrs {
		st.pos[col] = a
	}
	st.mc = make([][]int, len(attrs))
	for a, col := range attrs {
		st.mc[a] = masked.Column(col)
	}
	subsets := stats.SubsetsUpTo(len(attrs), c.maxDimOrDefault())
	st.byPos = make([][]int, len(attrs))
	for _, subset := range subsets {
		cols := make([]int, len(subset))
		for i, rel := range subset {
			cols[i] = attrs[rel]
		}
		cards := orig.Schema().Cardinalities(cols)
		co := make([][]int, len(cols))
		cm := make([][]int, len(cols))
		for i, col := range cols {
			co[i] = orig.Column(col)
			cm[i] = masked.Column(col)
		}
		to := stats.NewContingencyTable(cols, co, cards)
		tm := stats.NewContingencyTable(cols, cm, cards)
		rel := make([]int, len(subset))
		copy(rel, subset)
		t := &ctbilTable{rel: rel, cards: cards, orig: to.Cells, cells: tm.Cells, l1: to.L1Distance(tm)}
		for _, a := range rel {
			st.byPos[a] = append(st.byPos[a], len(st.tables))
		}
		st.tables = append(st.tables, t)
	}
	return st
}

// Apply implements Incremental.
func (c *CTBIL) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*ctbilState)
	for _, ch := range changes {
		a0 := st.pos[ch.Col]
		for _, ti := range st.byPos[a0] {
			t := st.tables[ti]
			var oldKey, newKey stats.ContingencyKey
			for i, a := range t.rel {
				v := st.mc[a][ch.Row]
				if a == a0 {
					v = ch.Old
				}
				oldKey = oldKey*stats.ContingencyKey(t.cards[i]) + stats.ContingencyKey(v)
				if a == a0 {
					v = ch.New
				}
				newKey = newKey*stats.ContingencyKey(t.cards[i]) + stats.ContingencyKey(v)
			}
			t.bump(oldKey, -1)
			t.bump(newKey, +1)
		}
		st.mc[a0][ch.Row] = ch.New
	}
	if st.l1 == nil {
		st.l1 = make([]int, len(st.tables))
	}
	for i, t := range st.tables {
		st.l1[i] = t.l1
	}
	return ctbilValue(st.l1, st.n)
}

// bump adjusts one masked cell count by ±1, keeping the L1 distance to the
// original table in sync.
func (t *ctbilTable) bump(key stats.ContingencyKey, delta int) {
	o := t.orig[key]
	m := t.cells[key]
	t.l1 += stats.AbsInt(m+delta-o) - stats.AbsInt(m-o)
	if m+delta == 0 {
		delete(t.cells, key)
	} else {
		t.cells[key] = m + delta
	}
}

// --- DBIL ---

type dbilState struct {
	n     int
	orig  *dataset.Dataset // read-only
	attrs []int
	pos   map[int]int
	sums  []int64 // per attr position: rank-displacement sum or mismatch count
}

// CloneState implements State.
func (s *dbilState) CloneState() State {
	sums := make([]int64, len(s.sums))
	copy(sums, s.sums)
	return &dbilState{n: s.n, orig: s.orig, attrs: s.attrs, pos: s.pos, sums: sums}
}

// Prepare implements Incremental.
func (d *DBIL) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &dbilState{n: n, orig: orig, attrs: attrs, pos: make(map[int]int, len(attrs)), sums: make([]int64, len(attrs))}
	for a, c := range attrs {
		st.pos[c] = a
		attr := orig.Schema().Attr(c)
		if attr.Ordered() && attr.Cardinality() > 1 {
			for r := 0; r < n; r++ {
				st.sums[a] += int64(stats.AbsInt(orig.At(r, c) - masked.At(r, c)))
			}
		} else {
			for r := 0; r < n; r++ {
				if orig.At(r, c) != masked.At(r, c) {
					st.sums[a]++
				}
			}
		}
	}
	return st
}

// Apply implements Incremental.
func (d *DBIL) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*dbilState)
	for _, ch := range changes {
		a := st.pos[ch.Col]
		attr := st.orig.Schema().Attr(ch.Col)
		o := st.orig.At(ch.Row, ch.Col)
		if attr.Ordered() && attr.Cardinality() > 1 {
			st.sums[a] += int64(stats.AbsInt(o-ch.New) - stats.AbsInt(o-ch.Old))
		} else {
			if o != ch.Old {
				st.sums[a]--
			}
			if o != ch.New {
				st.sums[a]++
			}
		}
	}
	return dbilValue(st.orig.Schema(), st.attrs, st.sums, st.n)
}

// --- EBIL ---

type ebilState struct {
	n     int
	orig  *dataset.Dataset // read-only
	attrs []int
	pos   map[int]int
	joint [][][]int // per attr position (nil when card < 2): card x card
	terms []float64 // cached ebilTerm per attr position
	dirty []bool    // Apply scratch, lazily built, never shared by clones
}

// CloneState implements State.
func (s *ebilState) CloneState() State {
	out := &ebilState{n: s.n, orig: s.orig, attrs: s.attrs, pos: s.pos}
	out.joint = make([][][]int, len(s.joint))
	for a, j := range s.joint {
		if j == nil {
			continue
		}
		card := len(j)
		backing := make([]int, card*card)
		m := make([][]int, card)
		for u := 0; u < card; u++ {
			m[u] = backing[u*card : (u+1)*card]
			copy(m[u], j[u])
		}
		out.joint[a] = m
	}
	out.terms = make([]float64, len(s.terms))
	copy(out.terms, s.terms)
	return out
}

// Prepare implements Incremental.
func (e *EBIL) Prepare(orig, masked *dataset.Dataset, attrs []int) State {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return nil
	}
	st := &ebilState{
		n: n, orig: orig, attrs: attrs,
		pos:   make(map[int]int, len(attrs)),
		joint: make([][][]int, len(attrs)),
		terms: make([]float64, len(attrs)),
	}
	for a, c := range attrs {
		st.pos[c] = a
		card := orig.Schema().Attr(c).Cardinality()
		if card < 2 {
			continue // mirrors Loss: constant attributes are skipped
		}
		st.joint[a] = stats.JointTransition(orig.Column(c), masked.Column(c), card)
		st.terms[a] = ebilTerm(st.joint[a], card, n)
	}
	return st
}

// Apply implements Incremental.
func (e *EBIL) Apply(state State, changes []dataset.CellChange) float64 {
	st := state.(*ebilState)
	if st.dirty == nil {
		st.dirty = make([]bool, len(st.attrs))
	}
	for _, ch := range changes {
		a := st.pos[ch.Col]
		if st.joint[a] == nil {
			continue // constant attribute; cannot actually change value
		}
		o := st.orig.At(ch.Row, ch.Col)
		st.joint[a][o][ch.Old]--
		st.joint[a][o][ch.New]++
		st.dirty[a] = true
	}
	for a := range st.dirty {
		if !st.dirty[a] {
			continue
		}
		st.dirty[a] = false
		st.terms[a] = ebilTerm(st.joint[a], len(st.joint[a]), st.n)
	}
	sum := 0.0
	counted := 0
	for a := range st.attrs {
		if st.joint[a] == nil {
			continue
		}
		sum += st.terms[a]
		counted++
	}
	if counted == 0 {
		return 0
	}
	return 100 * sum / float64(counted)
}
