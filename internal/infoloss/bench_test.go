package infoloss

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
)

func benchPair(b *testing.B, rows int) (*dataset.Dataset, *dataset.Dataset, []int) {
	b.Helper()
	d := datagen.MustByName("adult", rows, 5)
	names, _ := datagen.ProtectedAttrs("adult")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	masked, err := protection.Must("rankswap:p=10").Protect(d, attrs, rng)
	if err != nil {
		b.Fatal(err)
	}
	return d, masked, attrs
}

func benchMeasure(b *testing.B, m Measure, rows int) {
	b.Helper()
	orig, masked, attrs := benchPair(b, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Loss(orig, masked, attrs)
	}
}

func BenchmarkCTBILDim1(b *testing.B) { benchMeasure(b, &CTBIL{MaxDim: 1}, 1000) }
func BenchmarkCTBILDim2(b *testing.B) { benchMeasure(b, &CTBIL{MaxDim: 2}, 1000) }
func BenchmarkCTBILDim3(b *testing.B) { benchMeasure(b, &CTBIL{MaxDim: 3}, 1000) }
func BenchmarkDBIL(b *testing.B)      { benchMeasure(b, &DBIL{}, 1000) }
func BenchmarkEBIL(b *testing.B)      { benchMeasure(b, &EBIL{}, 1000) }

func BenchmarkFullBattery(b *testing.B) {
	orig, masked, attrs := benchPair(b, 1000)
	ms := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Average(ms, orig, masked, attrs)
	}
}
