package infoloss

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/dataset"
)

// mlTestData builds a dataset whose target column is perfectly predictable
// from the first protected attribute (target = feature % classes), so the
// original-trained classifier scores high and scrambling the features
// destroys measurable utility.
func mlTestData(t *testing.T, rows int) (*dataset.Dataset, []int, int) {
	t.Helper()
	cats := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = string(rune('a' + i))
		}
		return out
	}
	s := dataset.MustSchema(
		dataset.MustAttribute("f1", cats(6), true),
		dataset.MustAttribute("f2", cats(4), false),
		dataset.MustAttribute("label", cats(3), false),
	)
	d := dataset.New(s, rows)
	rng := rand.New(rand.NewPCG(11, 5))
	for r := 0; r < rows; r++ {
		v := rng.IntN(6)
		d.Set(r, 0, v)
		d.Set(r, 1, rng.IntN(4))
		d.Set(r, 2, v%3)
	}
	return d, []int{0, 1}, 2
}

func TestMLUtilityIdentityZero(t *testing.T) {
	d, attrs, target := mlTestData(t, 200)
	m := &MLUtility{Target: target}
	if got := m.Loss(d, d, attrs); got != 0 {
		t.Fatalf("MLU(identity) = %v, want 0", got)
	}
}

func TestMLUtilityScrambleLoses(t *testing.T) {
	d, attrs, target := mlTestData(t, 200)
	masked := scramble(d, attrs, 7)
	m := &MLUtility{Target: target}
	got := m.Loss(d, masked, attrs)
	if got <= 0 || got > 100 {
		t.Fatalf("MLU(scramble) = %v, want in (0,100]", got)
	}
	// A pure function of its inputs: two computations agree exactly.
	if again := m.Loss(d, masked, attrs); again != got {
		t.Fatalf("MLU not deterministic: %v vs %v", got, again)
	}
}

// TestMLUtilityMonotoneUnderNoise: scrambling more feature columns never
// reports (much) more retained utility — full scramble loses at least as
// much as leaving the predictive column intact.
func TestMLUtilityMonotoneUnderNoise(t *testing.T) {
	d, attrs, target := mlTestData(t, 400)
	m := &MLUtility{Target: target}
	// Scramble only the non-predictive feature: f1, which determines the
	// label, survives, so the classifier barely degrades.
	partial := scramble(d, []int{1}, 3)
	full := scramble(d, attrs, 3)
	lossPartial := m.Loss(d, partial, attrs)
	lossFull := m.Loss(d, full, attrs)
	if lossFull < lossPartial {
		t.Fatalf("full scramble (%v) reports less loss than partial (%v)", lossFull, lossPartial)
	}
	if lossPartial > 20 {
		t.Fatalf("scrambling the non-predictive feature lost %v, want small", lossPartial)
	}
}

// TestMLUtilityDegenerateInputs: out-of-range targets, target-only
// feature sets, and too-few rows all score a defined 0 instead of
// panicking.
func TestMLUtilityDegenerateInputs(t *testing.T) {
	d, attrs, target := mlTestData(t, 200)
	masked := scramble(d, attrs, 9)
	for name, m := range map[string]*MLUtility{
		"negative target":     {Target: -1},
		"target out of range": {Target: d.Schema().NumAttrs()},
	} {
		if got := m.Loss(d, masked, attrs); got != 0 {
			t.Errorf("%s: MLU = %v, want 0", name, got)
		}
	}
	// Target is the only "protected" attribute: no features remain.
	m := &MLUtility{Target: target}
	if got := m.Loss(d, masked, []int{target}); got != 0 {
		t.Errorf("target-only attrs: MLU = %v, want 0", got)
	}
	// Fewer rows than the hold-out stride.
	tiny, tinyAttrs, tinyTarget := mlTestData(t, 3)
	if got := (&MLUtility{Target: tinyTarget}).Loss(tiny, scramble(tiny, tinyAttrs, 1), tinyAttrs); got != 0 {
		t.Errorf("tiny dataset: MLU = %v, want 0", got)
	}
}

// TestMLUtilityStride: the stride knob changes the split (and generally
// the value) but stays deterministic per stride.
func TestMLUtilityStride(t *testing.T) {
	d, attrs, target := mlTestData(t, 400)
	masked := scramble(d, attrs, 5)
	for _, stride := range []int{2, 4, 10} {
		m := &MLUtility{Target: target, TestStride: stride}
		a, b := m.Loss(d, masked, attrs), m.Loss(d, masked, attrs)
		if a != b {
			t.Fatalf("stride %d not deterministic: %v vs %v", stride, a, b)
		}
		if a < 0 || a > 100 {
			t.Fatalf("stride %d out of range: %v", stride, a)
		}
	}
	// Values below 2 select the default of 4.
	def := (&MLUtility{Target: target}).Loss(d, masked, attrs)
	if got := (&MLUtility{Target: target, TestStride: 1}).Loss(d, masked, attrs); got != def {
		t.Fatalf("TestStride 1 (%v) does not match the default stride (%v)", got, def)
	}
}
