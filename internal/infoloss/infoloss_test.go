package infoloss

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/protection"
)

func testData(t *testing.T) (*dataset.Dataset, []int) {
	t.Helper()
	d := datagen.MustByName("adult", 250, 31)
	names, _ := datagen.ProtectedAttrs("adult")
	attrs, err := d.Schema().Indices(names...)
	if err != nil {
		t.Fatal(err)
	}
	return d, attrs
}

func scramble(d *dataset.Dataset, attrs []int, seed uint64) *dataset.Dataset {
	rng := rand.New(rand.NewPCG(seed, 1))
	out := d.Clone()
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		for r := 0; r < d.Rows(); r++ {
			out.Set(r, c, rng.IntN(card))
		}
	}
	return out
}

func TestIdentityHasZeroLoss(t *testing.T) {
	d, attrs := testData(t)
	for _, m := range Default() {
		if got := m.Loss(d, d, attrs); got != 0 {
			t.Errorf("%s(identity) = %v, want 0", m.Name(), got)
		}
	}
}

func TestScrambleHasHighLoss(t *testing.T) {
	d, attrs := testData(t)
	masked := scramble(d, attrs, 7)
	for _, m := range Default() {
		got := m.Loss(d, masked, attrs)
		if got < 10 {
			t.Errorf("%s(scramble) = %v, want >= 10", m.Name(), got)
		}
		if got > 100 {
			t.Errorf("%s(scramble) = %v, out of range", m.Name(), got)
		}
	}
}

func TestAllMeasuresWithinBounds(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(3, 3))
	maskings := []*dataset.Dataset{d, scramble(d, attrs, 11)}
	for _, spec := range []string{"micro:k=5", "top:q=0.2", "bottom:q=0.2", "recode:depth=3", "rankswap:p=12", "pram:theta=0.6"} {
		m, err := protection.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		masked, err := m.Protect(d, attrs, rng)
		if err != nil {
			t.Fatal(err)
		}
		maskings = append(maskings, masked)
	}
	for _, masked := range maskings {
		for _, m := range Default() {
			got := m.Loss(d, masked, attrs)
			if got < 0 || got > 100 {
				t.Errorf("%s out of [0,100]: %v", m.Name(), got)
			}
		}
	}
}

func TestDBILHandComputed(t *testing.T) {
	s := dataset.MustSchema(
		dataset.MustAttribute("o", []string{"a", "b", "c", "d", "e"}, true), // ordered, card 5
		dataset.MustAttribute("n", []string{"x", "y", "z"}, false),          // nominal
	)
	orig, _ := dataset.FromRecords(s, [][]string{
		{"a", "x"},
		{"c", "y"},
	})
	masked, _ := dataset.FromRecords(s, [][]string{
		{"e", "x"}, // ordered distance |0-4|/4 = 1; nominal 0
		{"c", "z"}, // ordered 0; nominal 1
	})
	// Mean over 4 cells = (1 + 0 + 0 + 1) / 4 = 0.5 -> 50.
	var d DBIL
	if got := d.Loss(orig, masked, []int{0, 1}); got != 50 {
		t.Fatalf("DBIL = %v, want 50", got)
	}
}

func TestCTBILHandComputed(t *testing.T) {
	s := dataset.MustSchema(dataset.MustAttribute("x", []string{"a", "b"}, true))
	orig, _ := dataset.FromRecords(s, [][]string{{"a"}, {"a"}, {"b"}, {"b"}})
	masked, _ := dataset.FromRecords(s, [][]string{{"a"}, {"a"}, {"a"}, {"b"}})
	// Single 1-way table: orig (2,2) vs masked (3,1): L1 = 2, normalized by
	// 2n=8 -> 0.25 -> 25.
	c := CTBIL{MaxDim: 2}
	if got := c.Loss(orig, masked, []int{0}); got != 25 {
		t.Fatalf("CTBIL = %v, want 25", got)
	}
}

func TestCTBILDimensionSensitivity(t *testing.T) {
	// Swapping values of two perfectly-correlated columns between records
	// preserves one-way tables but destroys the two-way table.
	s := dataset.MustSchema(
		dataset.MustAttribute("x", []string{"a", "b"}, true),
		dataset.MustAttribute("y", []string{"p", "q"}, true),
	)
	orig, _ := dataset.FromRecords(s, [][]string{{"a", "p"}, {"a", "p"}, {"b", "q"}, {"b", "q"}})
	masked, _ := dataset.FromRecords(s, [][]string{{"a", "q"}, {"a", "q"}, {"b", "p"}, {"b", "p"}})
	one := CTBIL{MaxDim: 1}
	two := CTBIL{MaxDim: 2}
	if got := one.Loss(orig, masked, []int{0, 1}); got != 0 {
		t.Fatalf("1-way CTBIL = %v, want 0 (marginals preserved)", got)
	}
	if got := two.Loss(orig, masked, []int{0, 1}); got <= 0 {
		t.Fatalf("2-way CTBIL = %v, want > 0 (joint destroyed)", got)
	}
}

func TestEBILZeroForBijectiveRecode(t *testing.T) {
	// A bijective relabelling loses no information: observing the masked
	// value pins down the original exactly, so H(orig|masked) = 0.
	d, attrs := testData(t)
	masked := d.Clone()
	for _, c := range attrs {
		card := d.Schema().Attr(c).Cardinality()
		for r := 0; r < d.Rows(); r++ {
			masked.Set(r, c, (d.At(r, c)+1)%card)
		}
	}
	var e EBIL
	if got := e.Loss(d, masked, attrs); got != 0 {
		t.Fatalf("EBIL(bijection) = %v, want 0", got)
	}
	// But DBIL sees every cell changed.
	var db DBIL
	if got := db.Loss(d, masked, attrs); got == 0 {
		t.Fatal("DBIL(bijection) = 0, want > 0")
	}
}

func TestEBILIncreasesWithNoise(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(5, 5))
	light, _ := protection.Must("pram:theta=0.9").Protect(d, attrs, rng)
	rng = rand.New(rand.NewPCG(5, 5))
	heavy, _ := protection.Must("pram:theta=0.2").Protect(d, attrs, rng)
	var e EBIL
	l, h := e.Loss(d, light, attrs), e.Loss(d, heavy, attrs)
	if l >= h {
		t.Fatalf("EBIL light=%v >= heavy=%v", l, h)
	}
}

func TestAverageIsMean(t *testing.T) {
	d, attrs := testData(t)
	masked := scramble(d, attrs, 13)
	ms := Default()
	want := 0.0
	for _, m := range ms {
		want += m.Loss(d, masked, attrs)
	}
	want /= float64(len(ms))
	if got := Average(ms, d, masked, attrs); got != want {
		t.Fatalf("Average = %v, want %v", got, want)
	}
}

func TestAveragePanicsOnEmpty(t *testing.T) {
	d, attrs := testData(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Average(nil, d, d, attrs)
}

func TestEmptyAttrsAndRows(t *testing.T) {
	d, _ := testData(t)
	empty := dataset.New(d.Schema(), 0)
	for _, m := range Default() {
		if got := m.Loss(d, d, nil); got != 0 {
			t.Errorf("%s with no attrs = %v", m.Name(), got)
		}
		if got := m.Loss(empty, empty, []int{0}); got != 0 {
			t.Errorf("%s with no rows = %v", m.Name(), got)
		}
	}
}

func TestMeasureNames(t *testing.T) {
	want := map[string]bool{"CTBIL": true, "DBIL": true, "EBIL": true}
	for _, m := range Default() {
		if !want[m.Name()] {
			t.Errorf("unexpected measure %q", m.Name())
		}
		delete(want, m.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing measures: %v", want)
	}
}
