// Package infoloss implements the three information-loss measures the
// paper aggregates into its fitness function (§2.3.1):
//
//   - CTBIL, contingency-table-based information loss (Torra &
//     Domingo-Ferrer 2001): how far the masked file's joint frequency
//     tables drift from the original's.
//   - DBIL, distance-based information loss (Torra & Domingo-Ferrer 2001):
//     average per-cell distance between original and masked values.
//   - EBIL, entropy-based information loss (Kooiman, Willenborg &
//     Gouweleeuw 1998): the uncertainty about original values given the
//     masked file, estimated from the empirical transition distribution.
//
// Every measure returns a value in [0,100]; 0 means the masked file is
// analytically indistinguishable from the original. The paper's IL term is
// the plain average of the three (Average).
package infoloss

import (
	"evoprot/internal/dataset"
	"evoprot/internal/stats"
)

// Measure is a single information-loss measure over the protected
// attributes. Implementations must be pure functions of their arguments.
type Measure interface {
	// Name identifies the measure in reports, e.g. "CTBIL".
	Name() string
	// Loss returns the information loss in [0,100] incurred by masked
	// relative to orig over the given attribute indices. Both datasets
	// must share the schema and row count.
	Loss(orig, masked *dataset.Dataset, attrs []int) float64
}

// Default returns the paper's information-loss battery: CTBIL over tables
// up to dimension 2, DBIL, and EBIL.
func Default() []Measure {
	return []Measure{&CTBIL{MaxDim: 2}, &DBIL{}, &EBIL{}}
}

// Average computes the mean loss over the given measures — the IL term of
// the paper's fitness (§2.3.1). It panics on an empty measure list.
func Average(measures []Measure, orig, masked *dataset.Dataset, attrs []int) float64 {
	if len(measures) == 0 {
		panic("infoloss: Average over no measures")
	}
	sum := 0.0
	for _, m := range measures {
		sum += m.Loss(orig, masked, attrs)
	}
	return sum / float64(len(measures))
}

// CTBIL is contingency-table-based information loss: for every subset of
// the protected attributes up to MaxDim attributes, it compares the joint
// frequency table of the original and masked files and accumulates the L1
// distance, normalized by the maximum possible distance (2n per table) and
// averaged over tables, scaled to [0,100].
type CTBIL struct {
	// MaxDim bounds the contingency-table order; 2 (all one-way and
	// two-way tables) is the standard choice and the package default.
	MaxDim int
}

// Name implements Measure.
func (c *CTBIL) Name() string { return "CTBIL" }

// maxDimOrDefault resolves the effective table-order bound.
func (c *CTBIL) maxDimOrDefault() int {
	if c.MaxDim <= 0 {
		return 2
	}
	return c.MaxDim
}

// Loss implements Measure.
func (c *CTBIL) Loss(orig, masked *dataset.Dataset, attrs []int) float64 {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	subsets := stats.SubsetsUpTo(len(attrs), c.maxDimOrDefault())
	l1 := make([]int, len(subsets))
	for s, subset := range subsets {
		cols := make([]int, len(subset))
		for i, rel := range subset {
			cols[i] = attrs[rel]
		}
		cards := orig.Schema().Cardinalities(cols)
		co := make([][]int, len(cols))
		cm := make([][]int, len(cols))
		for i, col := range cols {
			co[i] = orig.Column(col)
			cm[i] = masked.Column(col)
		}
		to := stats.NewContingencyTable(cols, co, cards)
		tm := stats.NewContingencyTable(cols, cm, cards)
		l1[s] = to.L1Distance(tm)
	}
	return ctbilValue(l1, n)
}

// ctbilValue folds the per-table L1 distances into the measure value. Both
// the full and the incremental path end here, with identical float
// operations in identical order, so delta evaluation is bit-for-bit equal
// to a full recompute.
func ctbilValue(l1 []int, n int) float64 {
	totalNorm := 0.0
	for _, d := range l1 {
		totalNorm += float64(d) / float64(2*n)
	}
	return 100 * totalNorm / float64(len(l1))
}

// DBIL is distance-based information loss: the mean per-cell distance
// between original and masked values over the protected attributes, scaled
// to [0,100]. For ordered attributes the distance between categories i and
// j is |i-j|/(card-1) — rank displacement matters; for nominal attributes
// it is 0/1.
type DBIL struct{}

// Name implements Measure.
func (d *DBIL) Name() string { return "DBIL" }

// Loss implements Measure.
func (d *DBIL) Loss(orig, masked *dataset.Dataset, attrs []int) float64 {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	sums := make([]int64, len(attrs))
	for a, c := range attrs {
		attr := orig.Schema().Attr(c)
		if attr.Ordered() && attr.Cardinality() > 1 {
			for r := 0; r < n; r++ {
				sums[a] += int64(stats.AbsInt(orig.At(r, c) - masked.At(r, c)))
			}
		} else {
			for r := 0; r < n; r++ {
				if orig.At(r, c) != masked.At(r, c) {
					sums[a]++
				}
			}
		}
	}
	return dbilValue(orig.Schema(), attrs, sums, n)
}

// dbilValue folds the exact per-attribute distance sums — rank
// displacements for ordered attributes, mismatch counts for nominal ones —
// into the measure value. Shared by the full and incremental paths so both
// produce bit-identical results.
func dbilValue(s *dataset.Schema, attrs []int, sums []int64, n int) float64 {
	total := 0.0
	for a, c := range attrs {
		attr := s.Attr(c)
		if attr.Ordered() && attr.Cardinality() > 1 {
			total += float64(sums[a]) / float64(attr.Cardinality()-1)
		} else {
			total += float64(sums[a])
		}
	}
	return 100 * total / float64(n*len(attrs))
}

// EBIL is entropy-based information loss: per attribute it estimates the
// conditional entropy H(original | masked) from the empirical joint
// distribution of (original, masked) value pairs, normalizes by the
// attribute's maximum entropy log2(card), and averages over attributes,
// scaled to [0,100]. This is the natural estimator of Kooiman et al.'s
// PRAM information loss when the true transition matrix is unknown: it
// measures how much uncertainty about the original value remains once the
// masked value is seen.
type EBIL struct{}

// Name implements Measure.
func (e *EBIL) Name() string { return "EBIL" }

// Loss implements Measure.
func (e *EBIL) Loss(orig, masked *dataset.Dataset, attrs []int) float64 {
	n := orig.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	sum := 0.0
	counted := 0
	for _, c := range attrs {
		card := orig.Schema().Attr(c).Cardinality()
		if card < 2 {
			continue // a constant attribute carries no information to lose
		}
		joint := stats.JointTransition(orig.Column(c), masked.Column(c), card)
		sum += ebilTerm(joint, card, n)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return 100 * sum / float64(counted)
}

// ebilTerm computes one attribute's normalized conditional entropy
// H(orig|masked)/log2(card) from its dense joint transition matrix. Shared
// by the full and incremental paths so both produce bit-identical results.
func ebilTerm(joint [][]int, card, n int) float64 {
	// H(U|V) = sum_v p(v) H(U | V=v).
	hcond := 0.0
	for v := 0; v < card; v++ {
		colTotal := 0
		for u := 0; u < card; u++ {
			colTotal += joint[u][v]
		}
		if colTotal == 0 {
			continue
		}
		col := make([]int, card)
		for u := 0; u < card; u++ {
			col[u] = joint[u][v]
		}
		hcond += float64(colTotal) / float64(n) * stats.Entropy(col)
	}
	return hcond / stats.Log2(float64(card))
}
