package infoloss

import (
	"math/rand/v2"
	"testing"

	"evoprot/internal/dataset"
)

// TestIncrementalMatchesFullLoss drives each incremental measure through
// long randomized change sequences — single-cell steps and multi-cell
// batches — and demands bit-identical agreement with a full Loss recompute
// at every step.
func TestIncrementalMatchesFullLoss(t *testing.T) {
	for _, seed := range []uint64{1, 17, 99} {
		d, attrs := testData(t)
		rng := rand.New(rand.NewPCG(seed, 5))
		masked := scramble(d, attrs, seed)
		for _, m := range Default() {
			inc, ok := m.(Incremental)
			if !ok {
				t.Fatalf("%s does not implement Incremental", m.Name())
			}
			work := masked.Clone()
			st := inc.Prepare(d, work, attrs)
			if st == nil {
				t.Fatalf("%s: Prepare returned nil", m.Name())
			}
			if got, want := inc.Apply(st, nil), m.Loss(d, work, attrs); got != want {
				t.Fatalf("%s: Apply(nil) = %v, Prepare-time Loss = %v", m.Name(), got, want)
			}
			for step := 0; step < 120; step++ {
				batch := 1 + rng.IntN(4)
				changes := make([]dataset.CellChange, batch)
				for i := range changes {
					changes[i] = dataset.RandomChange(rng, work, attrs)
				}
				got := inc.Apply(st, changes)
				want := m.Loss(d, work, attrs)
				if got != want {
					t.Fatalf("%s seed %d step %d: delta %v != full %v", m.Name(), seed, step, got, want)
				}
			}
		}
	}
}

// TestIncrementalCloneIsolation branches a state, applies divergent
// changes to the branch, and checks the original still tracks its own
// file exactly.
func TestIncrementalCloneIsolation(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(3, 9))
	for _, m := range Default() {
		inc := m.(Incremental)
		work := scramble(d, attrs, 7)
		st := inc.Prepare(d, work, attrs)

		branchData := work.Clone()
		branch := st.CloneState()
		for i := 0; i < 25; i++ {
			ch := dataset.RandomChange(rng, branchData, attrs)
			inc.Apply(branch, []dataset.CellChange{ch})
		}
		// The original state must still describe `work`, untouched by the
		// branch's evolution.
		if got, want := inc.Apply(st, nil), m.Loss(d, work, attrs); got != want {
			t.Fatalf("%s: original state corrupted by clone: %v != %v", m.Name(), got, want)
		}
		if got, want := inc.Apply(branch, nil), m.Loss(d, branchData, attrs); got != want {
			t.Fatalf("%s: branch state wrong: %v != %v", m.Name(), got, want)
		}
	}
}

// TestIncrementalRevertRoundTrip applies a change and its inverse and
// expects the exact original value back — the integer-state property that
// underpins long delta chains.
func TestIncrementalRevertRoundTrip(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(11, 2))
	for _, m := range Default() {
		inc := m.(Incremental)
		work := scramble(d, attrs, 21)
		st := inc.Prepare(d, work, attrs)
		before := inc.Apply(st, nil)
		for i := 0; i < 30; i++ {
			ch := dataset.RandomChange(rng, work, attrs)
			inc.Apply(st, []dataset.CellChange{ch})
			inv := dataset.CellChange{Row: ch.Row, Col: ch.Col, Old: ch.New, New: ch.Old}
			work.Set(ch.Row, ch.Col, ch.Old)
			if got := inc.Apply(st, []dataset.CellChange{inv}); got != before {
				t.Fatalf("%s: revert %d drifted: %v != %v", m.Name(), i, got, before)
			}
		}
	}
}

// TestCTBILPrepareRespectsMaxDim checks the incremental state enumerates
// the same table set as Loss for non-default dimensions.
func TestCTBILPrepareRespectsMaxDim(t *testing.T) {
	d, attrs := testData(t)
	rng := rand.New(rand.NewPCG(13, 4))
	for _, maxDim := range []int{1, 2, 3} {
		c := &CTBIL{MaxDim: maxDim}
		work := scramble(d, attrs, 31)
		st := c.Prepare(d, work, attrs)
		for i := 0; i < 20; i++ {
			ch := dataset.RandomChange(rng, work, attrs)
			if got, want := c.Apply(st, []dataset.CellChange{ch}), c.Loss(d, work, attrs); got != want {
				t.Fatalf("MaxDim=%d: delta %v != full %v", maxDim, got, want)
			}
		}
	}
}

// TestReversibleApplyUndo drives every reversible info-loss state through
// speculative ApplyUndo/Undo rounds interleaved with committed Applies —
// the exact access pattern of generation-batch evaluation — and demands
// (a) each speculative value equals the full recompute of the edited
// file, (b) the undone state still tracks the unedited file bit for bit,
// and (c) a control state advanced only by committed Applies agrees at
// every step.
func TestReversibleApplyUndo(t *testing.T) {
	d, attrs := testData(t)
	for _, m := range Default() {
		rev, ok := m.(Reversible)
		if !ok {
			t.Fatalf("%s lacks a reversible implementation", m.Name())
		}
		rng := rand.New(rand.NewPCG(13, 41))
		work := scramble(d, attrs, 9)
		st := rev.Prepare(d, work, attrs)
		if st == nil {
			t.Fatalf("%s: Prepare returned nil", m.Name())
		}
		control := st.CloneState()
		for step := 0; step < 40; step++ {
			// A speculative offspring: edits against a scratch copy.
			spec := work.Clone()
			changes := make([]dataset.CellChange, 1+rng.IntN(4))
			for i := range changes {
				changes[i] = dataset.RandomChange(rng, spec, attrs)
			}
			got := rev.ApplyUndo(st, changes)
			if want := m.Loss(d, spec, attrs); got != want {
				t.Fatalf("%s step %d: ApplyUndo %v != full %v", m.Name(), step, got, want)
			}
			rev.Undo(st)
			if got, want := rev.Apply(st, nil), m.Loss(d, work, attrs); got != want {
				t.Fatalf("%s step %d: state after Undo %v != full %v", m.Name(), step, got, want)
			}
			// Undo twice is a no-op.
			rev.Undo(st)
			// Every third round, commit the offspring for real.
			if step%3 == 0 {
				for _, ch := range changes {
					work.Set(ch.Row, ch.Col, ch.New)
				}
				if got, want := rev.Apply(st, changes), rev.Apply(control, changes); got != want {
					t.Fatalf("%s step %d: committed %v != control %v", m.Name(), step, got, want)
				}
			}
		}
	}
}
