package infoloss

// MLUtility is a machine-learning-utility information-loss measure: it
// quantifies how much worse a classifier trained on the protected file
// performs than one trained on the original. This is the "data mining
// utility" view of information loss — a masking that preserves marginal
// and joint distributions (low CTBIL/DBIL/EBIL) can still scramble the
// feature/label relationships an analyst actually models.
//
// The proxy model is naive Bayes with Laplace smoothing over the
// categorical protected attributes, the standard low-variance choice for
// utility benchmarking on categorical microdata. The hold-out split is a
// deterministic row stride — no RNG — so the measure is a pure function
// of its inputs and delta-evaluated engines stay bit-reproducible.
//
// MLUtility is deliberately not part of Default(): it needs a target
// column, and it is not Incremental — engines fall back to full
// recomputation for it (and disable generation-batch evaluation), which
// is correct but slower.

import (
	"math"

	"evoprot/internal/dataset"
)

// MLUtility measures the held-out accuracy drop of a naive Bayes
// classifier when trained on the masked file instead of the original.
type MLUtility struct {
	// Target is the column index of the class label the proxy classifier
	// predicts. It is excluded from the feature set when it is itself a
	// protected attribute.
	Target int
	// TestStride holds out every TestStride-th row (rows with
	// index % TestStride == 0) as the test split; the rest train. Values
	// below 2 select the default of 4 (a 25% hold-out).
	TestStride int
}

// Name implements Measure.
func (m *MLUtility) Name() string { return "MLU" }

// stride resolves the effective hold-out stride.
func (m *MLUtility) stride() int {
	if m.TestStride < 2 {
		return 4
	}
	return m.TestStride
}

// Loss implements Measure: 100 times the held-out accuracy drop of the
// masked-trained classifier relative to the original-trained one, clamped
// to [0,100]. Both classifiers are scored on the original file's test
// rows and labels — the ground truth an analyst's model must generalize
// to. A masking that improves accuracy scores 0: the protected file lost
// no modelling utility.
func (m *MLUtility) Loss(orig, masked *dataset.Dataset, attrs []int) float64 {
	n := orig.Rows()
	stride := m.stride()
	if n < stride || m.Target < 0 || m.Target >= orig.Schema().NumAttrs() {
		return 0
	}
	feats := make([]int, 0, len(attrs))
	for _, c := range attrs {
		if c != m.Target {
			feats = append(feats, c)
		}
	}
	if len(feats) == 0 || orig.Schema().Attr(m.Target).Cardinality() < 2 {
		return 0
	}
	accOrig := m.accuracy(orig, orig, feats, stride)
	accMasked := m.accuracy(masked, orig, feats, stride)
	if drop := accOrig - accMasked; drop > 0 {
		return 100 * drop
	}
	return 0
}

// accuracy trains naive Bayes on train's non-held-out rows and scores it
// on test's held-out rows against test's labels.
func (m *MLUtility) accuracy(train, test *dataset.Dataset, feats []int, stride int) float64 {
	s := train.Schema()
	classes := s.Attr(m.Target).Cardinality()

	// Training counts: class frequencies and per-feature value frequencies
	// conditioned on the class.
	classCount := make([]int, classes)
	valueCount := make([][][]int, len(feats))
	for f, c := range feats {
		card := s.Attr(c).Cardinality()
		valueCount[f] = make([][]int, classes)
		for k := 0; k < classes; k++ {
			valueCount[f][k] = make([]int, card)
		}
	}
	trained := 0
	for r := 0; r < train.Rows(); r++ {
		if r%stride == 0 {
			continue
		}
		k := train.At(r, m.Target)
		if k < 0 || k >= classes {
			continue // masked label outside the schema's class range
		}
		classCount[k]++
		trained++
		for f, c := range feats {
			v := train.At(r, c)
			if v >= 0 && v < len(valueCount[f][k]) {
				valueCount[f][k][v]++
			}
		}
	}
	if trained == 0 {
		return 0
	}

	// Laplace-smoothed log-likelihoods; the argmax tie-breaks toward the
	// lowest class index so prediction is deterministic.
	logPrior := make([]float64, classes)
	for k := 0; k < classes; k++ {
		logPrior[k] = math.Log(float64(classCount[k]+1) / float64(trained+classes))
	}
	correct, tested := 0, 0
	for r := 0; r < test.Rows(); r += stride {
		label := test.At(r, m.Target)
		if label < 0 || label >= classes {
			continue
		}
		best, bestScore := 0, 0.0
		for k := 0; k < classes; k++ {
			score := logPrior[k]
			for f, c := range feats {
				card := len(valueCount[f][k])
				v := test.At(r, c)
				count := 0
				if v >= 0 && v < card {
					count = valueCount[f][k][v]
				}
				score += math.Log(float64(count+1) / float64(classCount[k]+card))
			}
			if k == 0 || score > bestScore {
				best, bestScore = k, score
			}
		}
		if best == label {
			correct++
		}
		tested++
	}
	if tested == 0 {
		return 0
	}
	return float64(correct) / float64(tested)
}
