package stats

// ContingencyKey encodes a tuple of category indices over a fixed attribute
// subset into a single comparable value using mixed-radix positional
// encoding. Keys are only comparable between tables built with the same
// cardinalities.
type ContingencyKey uint64

// ContingencyTable is a sparse joint frequency table over a subset of
// categorical attributes.
type ContingencyTable struct {
	// Attrs holds the attribute (column) indices the table ranges over.
	Attrs []int
	// Cards holds the domain cardinality of each attribute in Attrs.
	Cards []int
	// Cells maps an encoded category tuple to its count.
	Cells map[ContingencyKey]int
	// Total is the number of records tabulated.
	Total int
}

// NewContingencyTable tabulates the joint distribution of the given columns.
// columns[i] must all have the same length; cards[i] is the domain
// cardinality of columns[i]. Cell values outside [0, card) panic, as they
// indicate a corrupted dataset.
func NewContingencyTable(attrs []int, columns [][]int, cards []int) *ContingencyTable {
	if len(columns) != len(cards) || len(attrs) != len(columns) {
		panic("stats: mismatched contingency table inputs")
	}
	t := &ContingencyTable{
		Attrs: attrs,
		Cards: cards,
		Cells: make(map[ContingencyKey]int),
	}
	if len(columns) == 0 || len(columns[0]) == 0 {
		return t
	}
	n := len(columns[0])
	for r := 0; r < n; r++ {
		var key ContingencyKey
		for c, col := range columns {
			v := col[r]
			if v < 0 || v >= cards[c] {
				panic("stats: category index out of domain in contingency table")
			}
			key = key*ContingencyKey(cards[c]) + ContingencyKey(v)
		}
		t.Cells[key]++
	}
	t.Total = n
	return t
}

// L1Distance returns the sum of absolute cell-count differences between two
// tables over the same attribute subset. The maximum possible value is
// a.Total + b.Total (disjoint supports).
func (t *ContingencyTable) L1Distance(other *ContingencyTable) int {
	d := 0
	for key, c := range t.Cells {
		d += AbsInt(c - other.Cells[key])
	}
	for key, c := range other.Cells {
		if _, seen := t.Cells[key]; !seen {
			d += c
		}
	}
	return d
}

// JointTransition tabulates the joint distribution of (orig[r], masked[r])
// pairs for a single attribute with the given cardinality. The result is a
// dense card x card matrix where cell [u][v] counts records whose original
// category is u and masked category is v.
func JointTransition(orig, masked []int, card int) [][]int {
	if len(orig) != len(masked) {
		panic("stats: mismatched columns in JointTransition")
	}
	m := make([][]int, card)
	backing := make([]int, card*card)
	for i := range m {
		m[i] = backing[i*card : (i+1)*card]
	}
	for r := range orig {
		u, v := orig[r], masked[r]
		if u < 0 || u >= card || v < 0 || v >= card {
			panic("stats: category index out of domain in JointTransition")
		}
		m[u][v]++
	}
	return m
}
