package stats

import "math/bits"

// Bitset is a fixed-size set of integers in [0, n), packed 64 per word.
// The record-linkage measures use bitsets to intersect per-attribute
// candidate sets over all records at machine-word speed.
//
// Every binary operation (OrWith, AndWith, AndNotWith, CopyFrom, the
// fused counts and the journaled variants) requires both operands to
// share the same universe size and panics otherwise — mismatched sizes
// are always a caller bug, and silently iterating over the shorter word
// slice would corrupt the linkage summaries.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("stats: negative bitset size")
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size n.
func (b *Bitset) Len() int { return b.n }

// checkSize enforces the uniform size contract of the binary operations.
func (b *Bitset) checkSize(o *Bitset, op string) {
	if b.n != o.n {
		panic("stats: " + op + " on bitsets of different size")
	}
}

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Reset removes every element, keeping the universe size.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Test reports whether i is in the set.
func (b *Bitset) Test(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// The word kernels below are unrolled four words per iteration: the RSRL
// candidate sweep spends its time in these loops, and 4-way unrolling
// keeps the adds independent (no loop-carried dependency beyond the
// induction variable) so superscalar cores retire several per cycle.
// The single-word forms are kept (orWithPlain etc.) as the oracles the
// kernel equivalence tests and micro-benchmarks compare against.

// OrWith adds every element of o to b. Both bitsets must share the same
// universe size.
func (b *Bitset) OrWith(o *Bitset) {
	b.checkSize(o, "OrWith")
	bw := b.words
	ow := o.words[:len(bw)]
	i, n4 := 0, len(bw)&^3
	for ; i < n4; i += 4 {
		bw[i] |= ow[i]
		bw[i+1] |= ow[i+1]
		bw[i+2] |= ow[i+2]
		bw[i+3] |= ow[i+3]
	}
	for ; i < len(bw); i++ {
		bw[i] |= ow[i]
	}
}

// AndWith removes every element of b not in o. Both bitsets must share the
// same universe size.
func (b *Bitset) AndWith(o *Bitset) {
	b.checkSize(o, "AndWith")
	bw := b.words
	ow := o.words[:len(bw)]
	i, n4 := 0, len(bw)&^3
	for ; i < n4; i += 4 {
		bw[i] &= ow[i]
		bw[i+1] &= ow[i+1]
		bw[i+2] &= ow[i+2]
		bw[i+3] &= ow[i+3]
	}
	for ; i < len(bw); i++ {
		bw[i] &= ow[i]
	}
}

// AndNotWith removes every element of o from b. Both bitsets must share
// the same universe size.
func (b *Bitset) AndNotWith(o *Bitset) {
	b.checkSize(o, "AndNotWith")
	bw := b.words
	ow := o.words[:len(bw)]
	i, n4 := 0, len(bw)&^3
	for ; i < n4; i += 4 {
		bw[i] &^= ow[i]
		bw[i+1] &^= ow[i+1]
		bw[i+2] &^= ow[i+2]
		bw[i+3] &^= ow[i+3]
	}
	for ; i < len(bw); i++ {
		bw[i] &^= ow[i]
	}
}

// CopyFrom overwrites b's contents with o's without allocating — the
// in-place counterpart of Clone for reusable scratch bitsets. Both bitsets
// must share the same universe size.
func (b *Bitset) CopyFrom(o *Bitset) {
	b.checkSize(o, "CopyFrom")
	copy(b.words, o.words)
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	bw := b.words
	i, n4 := 0, len(bw)&^3
	c := 0
	for ; i < n4; i += 4 {
		c += bits.OnesCount64(bw[i]) + bits.OnesCount64(bw[i+1]) +
			bits.OnesCount64(bw[i+2]) + bits.OnesCount64(bw[i+3])
	}
	for ; i < len(bw); i++ {
		c += bits.OnesCount64(bw[i])
	}
	return c
}

// AndCount returns |b ∩ o| without materializing the intersection —
// the fused form of CopyFrom+AndWith+Count for the final attribute of
// the RSRL candidate sweep. Both bitsets must share the same universe
// size.
func (b *Bitset) AndCount(o *Bitset) int {
	b.checkSize(o, "AndCount")
	bw := b.words
	ow := o.words[:len(bw)]
	i, n4 := 0, len(bw)&^3
	c := 0
	for ; i < n4; i += 4 {
		c += bits.OnesCount64(bw[i]&ow[i]) + bits.OnesCount64(bw[i+1]&ow[i+1]) +
			bits.OnesCount64(bw[i+2]&ow[i+2]) + bits.OnesCount64(bw[i+3]&ow[i+3])
	}
	for ; i < len(bw); i++ {
		c += bits.OnesCount64(bw[i] & ow[i])
	}
	return c
}

// AndNotCount returns |b \ o| without materializing the difference. Both
// bitsets must share the same universe size.
func (b *Bitset) AndNotCount(o *Bitset) int {
	b.checkSize(o, "AndNotCount")
	bw := b.words
	ow := o.words[:len(bw)]
	i, n4 := 0, len(bw)&^3
	c := 0
	for ; i < n4; i += 4 {
		c += bits.OnesCount64(bw[i]&^ow[i]) + bits.OnesCount64(bw[i+1]&^ow[i+1]) +
			bits.OnesCount64(bw[i+2]&^ow[i+2]) + bits.OnesCount64(bw[i+3]&^ow[i+3])
	}
	for ; i < len(bw); i++ {
		c += bits.OnesCount64(bw[i] &^ ow[i])
	}
	return c
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bitset{words: words, n: b.n}
}

// Plain single-word reference loops: the pre-unroll kernels, kept as the
// oracles for the equivalence tests and the baselines the kernel
// micro-benchmarks measure the unrolled variants against.

func (b *Bitset) orWithPlain(o *Bitset) {
	b.checkSize(o, "OrWith")
	for i, w := range o.words {
		b.words[i] |= w
	}
}

func (b *Bitset) andWithPlain(o *Bitset) {
	b.checkSize(o, "AndWith")
	for i, w := range o.words {
		b.words[i] &= w
	}
}

func (b *Bitset) andNotWithPlain(o *Bitset) {
	b.checkSize(o, "AndNotWith")
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

func (b *Bitset) countPlain() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// BitsetJournal records word-granular before-images of bitset mutations
// so that a batch of changes can be rolled back exactly without cloning
// the bitsets — the undo half of generation-batch delta evaluation. The
// journaled mutation variants (SetJ, ClearJ, OrWithJ, AndNotWithJ)
// record only the words they actually modify, so the journal size is
// proportional to the diff, not to the bitset. One journal may span any
// number of bitsets; Revert restores the recorded words in reverse
// order and leaves the journal empty for reuse.
type BitsetJournal struct {
	sets  []*Bitset
	words []int32
	old   []uint64
}

// Len returns the number of recorded word before-images.
func (j *BitsetJournal) Len() int { return len(j.sets) }

// Reset discards all recorded entries, keeping capacity for reuse.
func (j *BitsetJournal) Reset() {
	j.sets = j.sets[:0]
	j.words = j.words[:0]
	j.old = j.old[:0]
}

// Revert restores every recorded word, newest first, and resets the
// journal. After Revert each journaled bitset holds exactly the contents
// it had before the first recorded mutation.
func (j *BitsetJournal) Revert() {
	for k := len(j.sets) - 1; k >= 0; k-- {
		j.sets[k].words[j.words[k]] = j.old[k]
	}
	j.Reset()
}

func (j *BitsetJournal) record(b *Bitset, w int, old uint64) {
	j.sets = append(j.sets, b)
	j.words = append(j.words, int32(w))
	j.old = append(j.old, old)
}

// SetJ adds i to the set, recording the modified word in j. A no-op
// (bit already set) records nothing.
func (b *Bitset) SetJ(i int, j *BitsetJournal) {
	w := i >> 6
	mask := uint64(1) << (uint(i) & 63)
	if b.words[w]&mask == 0 {
		j.record(b, w, b.words[w])
		b.words[w] |= mask
	}
}

// ClearJ removes i from the set, recording the modified word in j. A
// no-op (bit already clear) records nothing.
func (b *Bitset) ClearJ(i int, j *BitsetJournal) {
	w := i >> 6
	mask := uint64(1) << (uint(i) & 63)
	if b.words[w]&mask != 0 {
		j.record(b, w, b.words[w])
		b.words[w] &^= mask
	}
}

// OrWithJ is OrWith with every changed word recorded in j. Both bitsets
// must share the same universe size.
func (b *Bitset) OrWithJ(o *Bitset, j *BitsetJournal) {
	b.checkSize(o, "OrWithJ")
	bw := b.words
	ow := o.words[:len(bw)]
	for i, w := range ow {
		if nw := bw[i] | w; nw != bw[i] {
			j.record(b, i, bw[i])
			bw[i] = nw
		}
	}
}

// AndNotWithJ is AndNotWith with every changed word recorded in j. Both
// bitsets must share the same universe size.
func (b *Bitset) AndNotWithJ(o *Bitset, j *BitsetJournal) {
	b.checkSize(o, "AndNotWithJ")
	bw := b.words
	ow := o.words[:len(bw)]
	for i, w := range ow {
		if nw := bw[i] &^ w; nw != bw[i] {
			j.record(b, i, bw[i])
			bw[i] = nw
		}
	}
}
