package stats

import "math/bits"

// Bitset is a fixed-size set of integers in [0, n), packed 64 per word.
// The record-linkage measures use bitsets to intersect per-attribute
// candidate sets over all records at machine-word speed.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("stats: negative bitset size")
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size n.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Reset removes every element, keeping the universe size.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Test reports whether i is in the set.
func (b *Bitset) Test(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// OrWith adds every element of o to b. Both bitsets must share the same
// universe size.
func (b *Bitset) OrWith(o *Bitset) {
	if b.n != o.n {
		panic("stats: OrWith on bitsets of different size")
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// AndWith removes every element of b not in o. Both bitsets must share the
// same universe size.
func (b *Bitset) AndWith(o *Bitset) {
	if b.n != o.n {
		panic("stats: AndWith on bitsets of different size")
	}
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// AndNotWith removes every element of o from b. Both bitsets must share
// the same universe size.
func (b *Bitset) AndNotWith(o *Bitset) {
	if b.n != o.n {
		panic("stats: AndNotWith on bitsets of different size")
	}
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

// CopyFrom overwrites b's contents with o's without allocating — the
// in-place counterpart of Clone for reusable scratch bitsets. Both bitsets
// must share the same universe size.
func (b *Bitset) CopyFrom(o *Bitset) {
	if b.n != o.n {
		panic("stats: CopyFrom on bitsets of different size")
	}
	copy(b.words, o.words)
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bitset{words: words, n: b.n}
}
