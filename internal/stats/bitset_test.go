package stats

import (
	"math/rand/v2"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // spans three words
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitset: len=%d count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Test(%d) false after Set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 3 {
		t.Fatalf("Clear(64) left Test=%v Count=%d", b.Test(64), b.Count())
	}
	// Setting twice is idempotent.
	b.Set(0)
	if b.Count() != 3 {
		t.Fatalf("double Set changed count to %d", b.Count())
	}
}

func TestBitsetAndOrAgainstMaps(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 20; trial++ {
		a, b := NewBitset(n), NewBitset(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				a.Set(i)
				ma[i] = true
			}
			if rng.Float64() < 0.4 {
				b.Set(i)
				mb[i] = true
			}
		}
		or := a.Clone()
		or.OrWith(b)
		and := a.Clone()
		and.AndWith(b)
		for i := 0; i < n; i++ {
			if or.Test(i) != (ma[i] || mb[i]) {
				t.Fatalf("trial %d: OrWith wrong at %d", trial, i)
			}
			if and.Test(i) != (ma[i] && mb[i]) {
				t.Fatalf("trial %d: AndWith wrong at %d", trial, i)
			}
		}
		// Clone independence: mutating the clone leaves the original alone.
		c := a.Clone()
		c.Clear(0)
		c.Set(1)
		if a.Test(1) && !ma[1] {
			t.Fatal("Clone shares storage with original")
		}
	}
}

func TestBitsetSizeMismatchPanics(t *testing.T) {
	ops := map[string]func(a, b *Bitset){
		"AndWith":    func(a, b *Bitset) { a.AndWith(b) },
		"OrWith":     func(a, b *Bitset) { a.OrWith(b) },
		"AndNotWith": func(a, b *Bitset) { a.AndNotWith(b) },
		"CopyFrom":   func(a, b *Bitset) { a.CopyFrom(b) },
	}
	for name, op := range ops {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s across sizes did not panic", name)
				}
			}()
			op(NewBitset(10), NewBitset(11))
		}()
	}
}

func TestBitsetAndNotAgainstMaps(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 20; trial++ {
		a, b := NewBitset(n), NewBitset(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.5 {
				a.Set(i)
				ma[i] = true
			}
			if rng.Float64() < 0.5 {
				b.Set(i)
				mb[i] = true
			}
		}
		diff := a.Clone()
		diff.AndNotWith(b)
		for i := 0; i < n; i++ {
			if diff.Test(i) != (ma[i] && !mb[i]) {
				t.Fatalf("trial %d: AndNotWith wrong at %d", trial, i)
			}
		}
		// Removing a disjoint partition piece from its union restores the
		// other piece exactly — the identity the RSRL window patch uses.
		union := a.Clone()
		union.AndNotWith(b) // a \ b
		rest := b.Clone()
		rest.AndNotWith(a) // b \ a
		both := union.Clone()
		both.OrWith(rest)
		both.AndNotWith(rest)
		for i := 0; i < n; i++ {
			if both.Test(i) != union.Test(i) {
				t.Fatalf("trial %d: disjoint subtract wrong at %d", trial, i)
			}
		}
	}
}

func TestBitsetCopyFromAndReset(t *testing.T) {
	a := NewBitset(130)
	for _, i := range []int{0, 5, 63, 64, 100, 129} {
		a.Set(i)
	}
	b := NewBitset(130)
	b.Set(7)
	b.CopyFrom(a)
	if b.Count() != a.Count() || b.Test(7) || !b.Test(129) {
		t.Fatalf("CopyFrom: count=%d (want %d), Test(7)=%v, Test(129)=%v",
			b.Count(), a.Count(), b.Test(7), b.Test(129))
	}
	// CopyFrom must not share storage.
	b.Clear(129)
	if !a.Test(129) {
		t.Fatal("CopyFrom shares storage with source")
	}
	a.Reset()
	if a.Count() != 0 || a.Len() != 130 {
		t.Fatalf("Reset left count=%d len=%d", a.Count(), a.Len())
	}
}
