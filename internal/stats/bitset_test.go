package stats

import (
	"math/rand/v2"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // spans three words
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitset: len=%d count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Test(%d) false after Set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 3 {
		t.Fatalf("Clear(64) left Test=%v Count=%d", b.Test(64), b.Count())
	}
	// Setting twice is idempotent.
	b.Set(0)
	if b.Count() != 3 {
		t.Fatalf("double Set changed count to %d", b.Count())
	}
}

func TestBitsetAndOrAgainstMaps(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 20; trial++ {
		a, b := NewBitset(n), NewBitset(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				a.Set(i)
				ma[i] = true
			}
			if rng.Float64() < 0.4 {
				b.Set(i)
				mb[i] = true
			}
		}
		or := a.Clone()
		or.OrWith(b)
		and := a.Clone()
		and.AndWith(b)
		for i := 0; i < n; i++ {
			if or.Test(i) != (ma[i] || mb[i]) {
				t.Fatalf("trial %d: OrWith wrong at %d", trial, i)
			}
			if and.Test(i) != (ma[i] && mb[i]) {
				t.Fatalf("trial %d: AndWith wrong at %d", trial, i)
			}
		}
		// Clone independence: mutating the clone leaves the original alone.
		c := a.Clone()
		c.Clear(0)
		c.Set(1)
		if a.Test(1) && !ma[1] {
			t.Fatal("Clone shares storage with original")
		}
	}
}

func TestBitsetSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AndWith across sizes did not panic")
		}
	}()
	NewBitset(10).AndWith(NewBitset(11))
}
