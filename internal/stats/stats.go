// Package stats provides the small statistical substrate shared by the
// information-loss and disclosure-risk measures: Shannon entropy, frequency
// tables, contingency tables over attribute subsets, rank utilities over
// ordered categorical domains, and attribute-subset enumeration.
//
// All functions are deterministic and allocation-conscious; they are called
// on every fitness evaluation of the evolutionary engine.
package stats

import (
	"math"
	"sort"
)

// Log2 returns the base-2 logarithm of x. It exists so that entropy code
// reads in information-theoretic units (bits) throughout the module.
func Log2(x float64) float64 { return math.Log2(x) }

// Entropy returns the Shannon entropy, in bits, of the distribution implied
// by the non-negative counts. Zero counts contribute nothing. An empty or
// all-zero slice has entropy 0.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	ft := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyFloat is Entropy for already-normalized (or unnormalized) weights.
func EntropyFloat(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		p := w / total
		h -= p * math.Log2(p)
	}
	return h
}

// Freq returns the frequency of each value in column, where values are
// category indices in [0, card). Values outside the range are ignored.
func Freq(column []int, card int) []int {
	counts := make([]int, card)
	for _, v := range column {
		if v >= 0 && v < card {
			counts[v]++
		}
	}
	return counts
}

// FreqShift patches a frequency table for one value moving from category
// old to category new — the incremental counterpart of recomputing Freq
// after a single cell edit.
func FreqShift(counts []int, old, new int) {
	counts[old]--
	counts[new]++
}

// CumFreq returns the exclusive cumulative frequencies of counts:
// out[i] = counts[0] + ... + counts[i-1]. len(out) == len(counts)+1, and
// out[len(counts)] is the total.
func CumFreq(counts []int) []int {
	out := make([]int, len(counts)+1)
	for i, c := range counts {
		out[i+1] = out[i] + c
	}
	return out
}

// MidRanks maps each category index to the average (mid) rank of its
// occurrences in the data, given per-category counts. Ranks are 0-based over
// the n records sorted by category index; a category with no occurrences is
// assigned the rank it would occupy if present (the boundary position).
//
// Mid-ranks turn an ordered categorical column into a quasi-numerical one;
// the interval-disclosure measure and rank-window linkage are defined on
// them.
func MidRanks(counts []int) []float64 {
	ranks := make([]float64, len(counts))
	MidRanksInto(ranks, counts)
	return ranks
}

// MidRanksInto is MidRanks into a caller-provided slice — the
// allocation-free variant incremental state updates use to re-derive ranks
// after a frequency patch. dst must hold len(counts) elements. The values
// written are identical to MidRanks', so full and incremental paths agree
// bit-for-bit.
//
// MidRanks are monotone non-decreasing in category order: consecutive
// ranks differ by (counts[i]+counts[i+1])/2 ≥ 0. All values are exact
// multiples of one half, so comparisons against them are exact; window
// code relies on both properties.
func MidRanksInto(dst []float64, counts []int) {
	cum := 0
	for i, c := range counts {
		if c > 0 {
			dst[i] = float64(cum) + float64(c-1)/2
		} else {
			dst[i] = float64(cum)
		}
		cum += c
	}
}

// Quantile returns the index of the category at the q-quantile (0 <= q <= 1)
// of the distribution given by counts, i.e. the smallest category c whose
// cumulative relative frequency reaches q. For q <= 0 it returns the first
// non-empty category; for q >= 1 the last.
func Quantile(counts []int, q float64) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0
	for i, c := range counts {
		cum += c
		if float64(cum) >= target && cum > 0 {
			return i
		}
	}
	return len(counts) - 1
}

// Combinations returns all k-element subsets of {0, ..., n-1} in
// lexicographic order. It panics if k < 0. For k > n it returns nil.
func Combinations(n, k int) [][]int {
	if k < 0 {
		panic("stats: negative k in Combinations")
	}
	if k > n {
		return nil
	}
	if k == 0 {
		return [][]int{{}}
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		comb := make([]int, k)
		copy(comb, idx)
		out = append(out, comb)
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

// SubsetsUpTo returns all non-empty subsets of {0,...,n-1} of size at most k,
// ordered by size then lexicographically.
func SubsetsUpTo(n, k int) [][]int {
	var out [][]int
	for size := 1; size <= k && size <= n; size++ {
		out = append(out, Combinations(n, size)...)
	}
	return out
}

// MixedRadixSize returns the product of the cardinalities, i.e. the number
// of cells of a joint contingency table. It returns 0 for an empty slice.
func MixedRadixSize(cards []int) int {
	if len(cards) == 0 {
		return 0
	}
	size := 1
	for _, c := range cards {
		size *= c
	}
	return size
}

// ArgminAll returns the smallest value in xs together with every index
// attaining it. It panics on an empty slice.
func ArgminAll(xs []float64) (min float64, idxs []int) {
	if len(xs) == 0 {
		panic("stats: ArgminAll of empty slice")
	}
	min = xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	for i, x := range xs {
		if x == min {
			idxs = append(idxs, i)
		}
	}
	return min, idxs
}

// ArgmaxAll returns the largest value in xs together with every index
// attaining it. It panics on an empty slice.
func ArgmaxAll(xs []float64) (max float64, idxs []int) {
	if len(xs) == 0 {
		panic("stats: ArgmaxAll of empty slice")
	}
	max = xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	for i, x := range xs {
		if x == max {
			idxs = append(idxs, i)
		}
	}
	return max, idxs
}

// MinMaxMean returns the minimum, maximum and mean of xs.
// It panics on an empty slice.
func MinMaxMean(xs []float64) (min, max, mean float64) {
	if len(xs) == 0 {
		panic("stats: MinMaxMean of empty slice")
	}
	min, max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return min, max, sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// AbsInt returns the absolute value of an int.
func AbsInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
