package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEntropyUniform(t *testing.T) {
	// Uniform distribution over 8 categories has entropy exactly 3 bits.
	counts := []int{5, 5, 5, 5, 5, 5, 5, 5}
	if got := Entropy(counts); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("Entropy(uniform/8) = %v, want 3", got)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy([]int{42}); got != 0 {
		t.Fatalf("Entropy(single category) = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Fatalf("Entropy(nil) = %v, want 0", got)
	}
	if got := Entropy([]int{0, 0, 0}); got != 0 {
		t.Fatalf("Entropy(all zero) = %v, want 0", got)
	}
}

func TestEntropyTwoPoint(t *testing.T) {
	// H(0.25, 0.75) = 0.811278...
	got := Entropy([]int{1, 3})
	want := -(0.25*math.Log2(0.25) + 0.75*math.Log2(0.75))
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Entropy = %v, want %v", got, want)
	}
}

func TestEntropyNonNegativeAndBounded(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		h := Entropy(counts)
		return h >= 0 && h <= math.Log2(float64(len(counts)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyFloatMatchesEntropy(t *testing.T) {
	counts := []int{3, 0, 7, 2}
	weights := []float64{3, 0, 7, 2}
	if a, b := Entropy(counts), EntropyFloat(weights); !almostEqual(a, b, 1e-12) {
		t.Fatalf("Entropy=%v EntropyFloat=%v", a, b)
	}
}

func TestFreq(t *testing.T) {
	col := []int{0, 2, 2, 1, 2, 0}
	got := Freq(col, 4)
	want := []int{2, 1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Freq = %v, want %v", got, want)
		}
	}
}

func TestFreqIgnoresOutOfRange(t *testing.T) {
	got := Freq([]int{-1, 0, 5, 1}, 2)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("Freq with out-of-range = %v, want [1 1]", got)
	}
}

func TestCumFreq(t *testing.T) {
	got := CumFreq([]int{2, 0, 3})
	want := []int{0, 2, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CumFreq = %v, want %v", got, want)
		}
	}
}

func TestMidRanks(t *testing.T) {
	// counts: cat0 x2, cat1 x0, cat2 x4  -> ranks 0.5, 2, 3.5
	got := MidRanks([]int{2, 0, 4})
	want := []float64{0.5, 2, 3.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MidRanks = %v, want %v", got, want)
		}
	}
}

func TestMidRanksMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		ranks := MidRanks(counts)
		for i := 1; i < len(ranks); i++ {
			if ranks[i] < ranks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidRanksIntoMatchesMidRanks(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		dst := make([]float64, len(counts))
		for i := range dst {
			dst[i] = -1 // stale values must all be overwritten
		}
		MidRanksInto(dst, counts)
		want := MidRanks(counts)
		for i := range want {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreqShiftMatchesRecount(t *testing.T) {
	column := []int{0, 2, 2, 1, 3, 2, 0, 1}
	counts := Freq(column, 4)
	// Move one value 2 -> 0 and compare against a recount.
	column[1] = 0
	FreqShift(counts, 2, 0)
	want := Freq(column, 4)
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("FreqShift: counts=%v, recount=%v", counts, want)
		}
	}
}

func TestQuantile(t *testing.T) {
	counts := []int{10, 20, 30, 40} // cum: 10,30,60,100
	cases := []struct {
		q    float64
		want int
	}{
		{0, 0}, {0.05, 0}, {0.1, 0}, {0.11, 1}, {0.3, 1},
		{0.5, 2}, {0.6, 2}, {0.61, 3}, {1, 3}, {2, 3}, {-1, 0},
	}
	for _, c := range cases {
		if got := Quantile(counts, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %d, want 0", got)
	}
	if got := Quantile([]int{0, 0}, 0.5); got != 0 {
		t.Fatalf("Quantile(zeros) = %d, want 0", got)
	}
}

func TestCombinations(t *testing.T) {
	got := Combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Combinations(4,2) has %d elems, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Combinations(4,2) = %v, want %v", got, want)
			}
		}
	}
}

func TestCombinationsEdge(t *testing.T) {
	if got := Combinations(3, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("Combinations(3,0) = %v, want [[]]", got)
	}
	if got := Combinations(2, 3); got != nil {
		t.Fatalf("Combinations(2,3) = %v, want nil", got)
	}
	if got := Combinations(3, 3); len(got) != 1 {
		t.Fatalf("Combinations(3,3) = %v, want single", got)
	}
}

func TestCombinationsCount(t *testing.T) {
	// C(6,3) = 20
	if got := Combinations(6, 3); len(got) != 20 {
		t.Fatalf("C(6,3) count = %d, want 20", len(got))
	}
}

func TestSubsetsUpTo(t *testing.T) {
	got := SubsetsUpTo(3, 2)
	// size1: {0},{1},{2}; size2: {0,1},{0,2},{1,2} -> 6 subsets
	if len(got) != 6 {
		t.Fatalf("SubsetsUpTo(3,2) count = %d, want 6", len(got))
	}
	if len(got[0]) != 1 || len(got[5]) != 2 {
		t.Fatalf("SubsetsUpTo ordering wrong: %v", got)
	}
}

func TestMixedRadixSize(t *testing.T) {
	if got := MixedRadixSize([]int{3, 4, 5}); got != 60 {
		t.Fatalf("MixedRadixSize = %d, want 60", got)
	}
	if got := MixedRadixSize(nil); got != 0 {
		t.Fatalf("MixedRadixSize(nil) = %d, want 0", got)
	}
}

func TestArgminArgmaxAll(t *testing.T) {
	xs := []float64{3, 1, 2, 1, 5}
	min, mins := ArgminAll(xs)
	if min != 1 || len(mins) != 2 || mins[0] != 1 || mins[1] != 3 {
		t.Fatalf("ArgminAll = %v %v", min, mins)
	}
	max, maxs := ArgmaxAll(xs)
	if max != 5 || len(maxs) != 1 || maxs[0] != 4 {
		t.Fatalf("ArgmaxAll = %v %v", max, maxs)
	}
}

func TestMinMaxMean(t *testing.T) {
	min, max, mean := MinMaxMean([]float64{2, 4, 6})
	if min != 2 || max != 6 || !almostEqual(mean, 4, 1e-12) {
		t.Fatalf("MinMaxMean = %v %v %v", min, max, mean)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {95, 5}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntHelpers(t *testing.T) {
	if AbsInt(-3) != 3 || AbsInt(3) != 3 || AbsInt(0) != 0 {
		t.Fatal("AbsInt broken")
	}
	if MinInt(2, 3) != 2 || MinInt(3, 2) != 2 {
		t.Fatal("MinInt broken")
	}
	if MaxInt(2, 3) != 3 || MaxInt(3, 2) != 3 {
		t.Fatal("MaxInt broken")
	}
}

func TestContingencyTableBasic(t *testing.T) {
	colA := []int{0, 0, 1, 1}
	colB := []int{0, 1, 0, 1}
	tab := NewContingencyTable([]int{0, 1}, [][]int{colA, colB}, []int{2, 2})
	if tab.Total != 4 {
		t.Fatalf("Total = %d, want 4", tab.Total)
	}
	if len(tab.Cells) != 4 {
		t.Fatalf("Cells = %d, want 4", len(tab.Cells))
	}
	for _, c := range tab.Cells {
		if c != 1 {
			t.Fatalf("cell count = %d, want 1", c)
		}
	}
}

func TestContingencyL1SelfZero(t *testing.T) {
	col := []int{0, 1, 2, 1, 0}
	tab := NewContingencyTable([]int{0}, [][]int{col}, []int{3})
	if d := tab.L1Distance(tab); d != 0 {
		t.Fatalf("self L1 = %d, want 0", d)
	}
}

func TestContingencyL1Disjoint(t *testing.T) {
	a := NewContingencyTable([]int{0}, [][]int{{0, 0, 0}}, []int{2})
	b := NewContingencyTable([]int{0}, [][]int{{1, 1, 1}}, []int{2})
	if d := a.L1Distance(b); d != 6 {
		t.Fatalf("disjoint L1 = %d, want 6", d)
	}
}

func TestContingencyL1Symmetric(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		colA := make([]int, len(rawA))
		for i, v := range rawA {
			colA[i] = int(v % 5)
		}
		colB := make([]int, len(rawB))
		for i, v := range rawB {
			colB[i] = int(v % 5)
		}
		ta := NewContingencyTable([]int{0}, [][]int{colA}, []int{5})
		tb := NewContingencyTable([]int{0}, [][]int{colB}, []int{5})
		return ta.L1Distance(tb) == tb.L1Distance(ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJointTransition(t *testing.T) {
	orig := []int{0, 0, 1, 2}
	masked := []int{0, 1, 1, 2}
	m := JointTransition(orig, masked, 3)
	if m[0][0] != 1 || m[0][1] != 1 || m[1][1] != 1 || m[2][2] != 1 {
		t.Fatalf("JointTransition = %v", m)
	}
	sum := 0
	for _, row := range m {
		for _, c := range row {
			sum += c
		}
	}
	if sum != 4 {
		t.Fatalf("total = %d, want 4", sum)
	}
}

func TestJointTransitionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	JointTransition([]int{0}, []int{0, 1}, 2)
}
