package stats

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// randomBitset fills a fresh bitset over [0, n) with density p.
func randomBitset(rng *rand.Rand, n int, p float64) *Bitset {
	b := NewBitset(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
		}
	}
	return b
}

// TestBitsetUnrolledKernelsMatchPlain property-tests the unrolled 4-word
// kernels against the single-word reference loops across sizes that
// exercise every remainder of the 4-way unroll (0..3 tail words) and the
// sub-word edge.
func TestBitsetUnrolledKernelsMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for _, n := range []int{0, 1, 63, 64, 65, 128, 192, 256, 257, 300, 1066} {
		for trial := 0; trial < 10; trial++ {
			a := randomBitset(rng, n, 0.4)
			b := randomBitset(rng, n, 0.4)

			or1, or2 := a.Clone(), a.Clone()
			or1.OrWith(b)
			or2.orWithPlain(b)
			and1, and2 := a.Clone(), a.Clone()
			and1.AndWith(b)
			and2.andWithPlain(b)
			not1, not2 := a.Clone(), a.Clone()
			not1.AndNotWith(b)
			not2.andNotWithPlain(b)
			for i := 0; i < n; i++ {
				if or1.Test(i) != or2.Test(i) {
					t.Fatalf("n=%d: OrWith diverges from plain at %d", n, i)
				}
				if and1.Test(i) != and2.Test(i) {
					t.Fatalf("n=%d: AndWith diverges from plain at %d", n, i)
				}
				if not1.Test(i) != not2.Test(i) {
					t.Fatalf("n=%d: AndNotWith diverges from plain at %d", n, i)
				}
			}
			if got, want := a.Count(), a.countPlain(); got != want {
				t.Fatalf("n=%d: Count=%d plain=%d", n, got, want)
			}
			if got, want := a.AndCount(b), and2.countPlain(); got != want {
				t.Fatalf("n=%d: AndCount=%d, materialized=%d", n, got, want)
			}
			if got, want := a.AndNotCount(b), not2.countPlain(); got != want {
				t.Fatalf("n=%d: AndNotCount=%d, materialized=%d", n, got, want)
			}
		}
	}
}

// TestBitsetFusedCountSizeMismatchPanics extends the uniform size-check
// contract to the fused and journaled binary operations.
func TestBitsetFusedCountSizeMismatchPanics(t *testing.T) {
	var j BitsetJournal
	ops := map[string]func(a, b *Bitset){
		"AndCount":    func(a, b *Bitset) { a.AndCount(b) },
		"AndNotCount": func(a, b *Bitset) { a.AndNotCount(b) },
		"OrWithJ":     func(a, b *Bitset) { a.OrWithJ(b, &j) },
		"AndNotWithJ": func(a, b *Bitset) { a.AndNotWithJ(b, &j) },
	}
	for name, op := range ops {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s across sizes did not panic", name)
				}
			}()
			op(NewBitset(10), NewBitset(11))
		}()
	}
}

// TestBitsetJournalRevert drives random journaled mutation sequences over
// several bitsets through one shared journal and checks Revert restores
// every bitset bit for bit — including overlapping mutations of the same
// words and no-op mutations (which must record nothing).
func TestBitsetJournalRevert(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(300)
		sets := make([]*Bitset, 3)
		want := make([]*Bitset, 3)
		for k := range sets {
			sets[k] = randomBitset(rng, n, 0.3)
			want[k] = sets[k].Clone()
		}
		var j BitsetJournal
		for step := 0; step < 40; step++ {
			b := sets[rng.IntN(len(sets))]
			switch rng.IntN(4) {
			case 0:
				b.SetJ(rng.IntN(n), &j)
			case 1:
				b.ClearJ(rng.IntN(n), &j)
			case 2:
				b.OrWithJ(randomBitset(rng, n, 0.2), &j)
			case 3:
				b.AndNotWithJ(randomBitset(rng, n, 0.2), &j)
			}
		}
		j.Revert()
		if j.Len() != 0 {
			t.Fatalf("trial %d: journal not empty after Revert: %d", trial, j.Len())
		}
		for k := range sets {
			for i := 0; i < n; i++ {
				if sets[k].Test(i) != want[k].Test(i) {
					t.Fatalf("trial %d: set %d not restored at %d", trial, k, i)
				}
			}
		}
	}
}

// TestBitsetJournalNoOpRecordsNothing pins the diff-proportional
// guarantee: mutations that change nothing must not grow the journal.
func TestBitsetJournalNoOpRecordsNothing(t *testing.T) {
	var j BitsetJournal
	b := NewBitset(128)
	b.Set(5)
	b.SetJ(5, &j)   // already set
	b.ClearJ(6, &j) // already clear
	empty := NewBitset(128)
	b.OrWithJ(empty, &j)     // identity
	b.AndNotWithJ(empty, &j) // identity
	if j.Len() != 0 {
		t.Fatalf("no-op mutations recorded %d entries", j.Len())
	}
	b.SetJ(6, &j)
	b.ClearJ(6, &j)
	if j.Len() != 2 {
		t.Fatalf("two real mutations recorded %d entries", j.Len())
	}
	j.Revert()
	if !b.Test(5) || b.Test(6) {
		t.Fatal("Revert did not restore the original contents")
	}
}

// --- Micro-benchmarks: unrolled vs plain word loops (paper scale:
// 1066 records = Flare) and the fused counts vs their materialized
// equivalents. ---

func benchBitsetPair(n int) (*Bitset, *Bitset) {
	rng := rand.New(rand.NewPCG(17, 1))
	return randomBitset(rng, n, 0.5), randomBitset(rng, n, 0.5)
}

func BenchmarkBitsetKernels(b *testing.B) {
	for _, n := range []int{1066, 100_000} {
		a, o := benchBitsetPair(n)
		kernels := []struct {
			name string
			fn   func()
		}{
			{"And/unrolled", func() { a.AndWith(o) }},
			{"And/plain", func() { a.andWithPlain(o) }},
			{"Or/unrolled", func() { a.OrWith(o) }},
			{"Or/plain", func() { a.orWithPlain(o) }},
			{"AndNot/unrolled", func() { a.AndNotWith(o) }},
			{"AndNot/plain", func() { a.andNotWithPlain(o) }},
			{"Count/unrolled", func() { _ = a.Count() }},
			{"Count/plain", func() { _ = a.countPlain() }},
		}
		for _, k := range kernels {
			b.Run(fmt.Sprintf("%s/n=%d", k.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					k.fn()
				}
			})
		}
	}
}

// BenchmarkBitsetFusedCount compares the fused AndCount/AndNotCount
// against the CopyFrom+op+Count sequence they replace in the RSRL sweep.
func BenchmarkBitsetFusedCount(b *testing.B) {
	for _, n := range []int{1066, 100_000} {
		a, o := benchBitsetPair(n)
		scratch := NewBitset(n)
		b.Run(fmt.Sprintf("AndCount/fused/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = a.AndCount(o)
			}
		})
		b.Run(fmt.Sprintf("AndCount/materialized/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scratch.CopyFrom(a)
				scratch.AndWith(o)
				_ = scratch.Count()
			}
		})
		b.Run(fmt.Sprintf("AndNotCount/fused/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = a.AndNotCount(o)
			}
		})
		b.Run(fmt.Sprintf("AndNotCount/materialized/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scratch.CopyFrom(a)
				scratch.AndNotWith(o)
				_ = scratch.Count()
			}
		})
	}
}
