// CSV pipeline: the workflow for your own data rather than the built-in
// synthetic datasets —
//
//  1. load an original CSV,
//  2. build a seed population with explicitly chosen maskings,
//  3. evolve with a checkpoint in the middle (long runs survive restarts),
//  4. save the best protection as a publishable CSV.
//
// The "original" here is itself generated and saved first so the example
// is self-contained; point origPath at a real file to use yours.
//
//	go run ./examples/csvpipeline
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"

	"evoprot"
)

func main() {
	dir, err := os.MkdirTemp("", "evoprot-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	origPath := filepath.Join(dir, "original.csv")

	// Step 0 (self-containment): write an "external" file to load.
	seedData, err := evoprot.GenerateDataset("german", 250, 99)
	if err != nil {
		log.Fatal(err)
	}
	if err := evoprot.SaveCSV(seedData, origPath); err != nil {
		log.Fatal(err)
	}

	// Step 1: load the original microdata.
	orig, err := evoprot.LoadCSV(origPath)
	if err != nil {
		log.Fatal(err)
	}
	attrNames := []string{"EXISTACC", "SAVINGS", "PRESEMPLOY"}
	attrs, err := orig.Schema().Indices(attrNames...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d records, protecting %v\n", origPath, orig.Rows(), attrNames)

	// Step 2: seed protections, explicitly chosen (a real deployment
	// would pick the methods its tooling already trusts).
	rng := rand.New(rand.NewPCG(99, 1))
	var seeds []*evoprot.Individual
	for _, spec := range []string{
		"micro:k=3", "micro:k=5", "micro:k=8",
		"rankswap:p=5", "rankswap:p=12",
		"pram:theta=0.85", "pram:theta=0.65",
		"recode:depth=1", "top:q=0.1", "bottom:q=0.1",
	} {
		m, err := evoprot.ParseMethod(spec)
		if err != nil {
			log.Fatal(err)
		}
		masked, err := m.Protect(orig, attrs, rng)
		if err != nil {
			log.Fatal(err)
		}
		seeds = append(seeds, evoprot.NewIndividual(masked, spec))
	}

	// Step 3: evolve 60 generations, checkpoint, resume, evolve 60 more.
	eval, err := evoprot.NewEvaluator(orig, attrNames, evoprot.EvaluatorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := evoprot.NewEngine(eval, seeds, evoprot.EngineConfig{
		Generations: 60, Seed: 99, InitWorkers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine.Run(context.Background())
	fmt.Printf("after 60 generations: best score %.2f\n", engine.Best().Eval.Score)

	var checkpoint bytes.Buffer
	if err := engine.Snapshot(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes\n", checkpoint.Len())

	resumed, err := evoprot.ResumeEngine(eval, &checkpoint, evoprot.EngineConfig{
		Generations: 60, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := resumed.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 60 more generations: best score %.2f (IL=%.2f DR=%.2f)\n",
		res.Best.Eval.Score, res.Best.Eval.IL, res.Best.Eval.DR)

	// Step 4: publish.
	outPath := filepath.Join(dir, "protected.csv")
	if err := evoprot.SaveCSV(res.Best.Data, outPath); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(outPath)
	fmt.Printf("protected file written: %s (%d bytes)\n", outPath, info.Size())
}
