// Islands: heterogeneous multi-population evolution through the Runner
// API.
//
// Four islands evolve the same initial population concurrently, each from
// its own derived seed — but not identically: the "explore-exploit" niche
// preset spreads mutation rates, leader fractions, selection pressures
// and crossover disruption across the islands, so exploitative and
// explorative searches run side by side and elite protections migrate
// between the niches. Migration itself adapts: at every barrier the
// coordinator measures how far the island populations have diverged and
// widens or narrows the exchange schedule accordingly (watch the
// "epoch" lines). A progress callback streams per-island statistics,
// Ctrl-C cancels gracefully (best-so-far still reported), and the whole
// heterogeneous adaptive run is reproducible: the one top-level seed
// fixes every island's trajectory, every migration and every controller
// decision.
//
//	go run ./examples/islands
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"

	"evoprot"
)

func main() {
	orig, err := evoprot.GenerateDataset("flare", 0, 42) // paper scale
	if err != nil {
		log.Fatal(err)
	}
	attrs, err := evoprot.ProtectedAttributes("flare")
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels between generations; the partial result survives.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Progress: one line per island every 50 generations. The callback is
	// serialized by the runner, but guard shared state anyway — island
	// order interleaves.
	var mu sync.Mutex
	lastBest := map[int]float64{}
	progress := func(ev evoprot.Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Epoch != nil {
			// The adaptive controller's barrier decision: the divergence it
			// observed and the schedule governing the next epoch.
			fmt.Printf("epoch: divergence %.4f -> migrate every %d, %d migrant(s), %d accepted\n",
				ev.Epoch.Divergence, ev.Epoch.MigrateEvery, ev.Epoch.Migrants, ev.Epoch.Accepted)
			return
		}
		if ev.Done {
			fmt.Printf("island %d done after %d generations (stop: %s)\n", ev.Island, ev.Stats.Gen, ev.Stop)
			return
		}
		if ev.Stats.Gen%50 == 0 || ev.Stats.Min != lastBest[ev.Island] {
			if ev.Stats.Gen%50 == 0 {
				fmt.Printf("island %d gen %4d: best %6.2f mean %6.2f\n",
					ev.Island, ev.Stats.Gen, ev.Stats.Min, ev.Stats.Mean)
			}
			lastBest[ev.Island] = ev.Stats.Min
		}
	}

	res, err := evoprot.Run(ctx, orig, attrs,
		evoprot.WithGrid("flare"),
		evoprot.WithGenerations(400),
		evoprot.WithSeed(42),
		evoprot.WithWorkers(8),
		evoprot.WithIslands(4),
		evoprot.WithNiches("explore-exploit"), // islands 1..3 mutate/select/cross differently
		evoprot.WithMigration(25, 2),          // the adaptive controller's starting schedule
		evoprot.WithAdaptiveMigration(evoprot.AdaptiveMigration{}),
		evoprot.WithTopology(evoprot.Ring),
		evoprot.WithProgress(progress),
	)
	if err != nil {
		// A cancelled context still yields the best-so-far result.
		if res == nil {
			log.Fatal(err)
		}
		fmt.Printf("run ended early: %v\n", err)
	}

	fmt.Printf("\n%d islands, %d migrations accepted, stop: %s\n",
		len(res.Islands), res.Migrations, res.StopReason)
	for i, ir := range res.Islands {
		marker := "  "
		if i == res.BestIsland {
			marker = "->"
		}
		fmt.Printf("%s island %d: best %6.2f after %d generations\n",
			marker, i, ir.Best.Eval.Score, ir.Generations)
	}
	best := res.Best
	fmt.Printf("\nbest protection (island %d, from %s): IL=%.2f DR=%.2f score=%.2f\n",
		res.BestIsland, best.Origin, best.Eval.IL, best.Eval.DR, best.Eval.Score)
}
