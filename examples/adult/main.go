// Adult walkthrough: the paper's experiment 2 on the Adult dataset
// (Figures 9 and 10), rendered as text figures.
//
// The run compares the two fitness aggregations on the same initial
// population, reproducing the paper's observation that max(IL, DR) drives
// the population toward balanced protections while mean(IL, DR) tolerates
// unbalanced ones.
//
//	go run ./examples/adult [-full]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"evoprot"
	"evoprot/internal/experiment"
)

func main() {
	full := flag.Bool("full", false, "paper scale (1000 records, 2000 generations)")
	flag.Parse()

	rows, gens := 300, 200
	if *full {
		rows, gens = 0, 2000
	}

	for _, agg := range []string{"mean", "max"} {
		spec := evoprot.ExperimentSpec{
			Dataset:     "adult",
			Rows:        rows,
			Aggregator:  agg,
			Generations: gens,
			Seed:        42,
			InitWorkers: runtime.GOMAXPROCS(0),
		}
		rep, err := evoprot.RunExperiment(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.Summary())
		fmt.Println(rep.DispersionPlot(72, 18))
		fmt.Println(rep.EvolutionPlot(72, 18))
		fmt.Printf("population balance |IL-DR|: initial %.2f -> final %.2f\n",
			experiment.Balance(rep.Initial), experiment.Balance(rep.Final))
		fmt.Println("--------------------------------------------------------------")
	}
	fmt.Println("note how the final population under max is more concentrated around")
	fmt.Println("balanced (IL≈DR) pairs than under mean — the paper's §3.2 conclusion.")
}
