// Quickstart: the 60-second tour of evoprot.
//
// Generate a categorical dataset, seed an initial population from the
// paper's masking grid, evolve it under the max(IL, DR) fitness through
// the context-aware Runner API, and inspect the best protection found.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"evoprot"
)

func main() {
	// 1. An original microdata file. Here a synthetic Adult stand-in;
	//    evoprot.LoadCSV("yours.csv") works the same way.
	orig, err := evoprot.GenerateDataset("adult", 300, 42)
	if err != nil {
		log.Fatal(err)
	}
	attrs, err := evoprot.ProtectedAttributes("adult") // EDUCATION, MARITAL-STATUS, OCCUPATION
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %d records, protecting %v\n\n", orig.Rows(), attrs)

	// 2. Evolve. Run seeds the population with the paper's Adult masking
	//    grid (86 protections), then runs the genetic algorithm. The
	//    context bounds the run: cancel it, or give it a deadline, and the
	//    best-so-far result comes back with the stop reason recorded.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := evoprot.Run(ctx, orig, attrs,
		evoprot.WithGrid("adult"),
		evoprot.WithAggregator("max"), // Eq. 2: score = max(IL, DR); lower is better
		evoprot.WithGenerations(150),
		evoprot.WithSeed(42),
		evoprot.WithWorkers(8),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Results. A single-island run has exactly one per-island result;
	//    its History is the generation-by-generation trajectory.
	trajectory := res.Islands[0]
	first, last := trajectory.History[0], trajectory.History[len(trajectory.History)-1]
	fmt.Printf("after %d generations (%d fitness evaluations, stop: %s):\n",
		res.Generations, res.Evaluations, res.StopReason)
	fmt.Printf("  best score  %6.2f -> %6.2f\n", first.Min, last.Min)
	fmt.Printf("  mean score  %6.2f -> %6.2f\n", first.Mean, last.Mean)
	fmt.Printf("  worst score %6.2f -> %6.2f\n\n", first.Max, last.Max)

	best := res.Best
	fmt.Printf("best protection (from %s):\n", best.Origin)
	fmt.Printf("  information loss %6.2f\n", best.Eval.IL)
	fmt.Printf("  disclosure risk  %6.2f\n", best.Eval.DR)
	fmt.Printf("  score            %6.2f\n\n", best.Eval.Score)

	// 4. The masked file itself is a regular dataset: save or inspect it.
	fmt.Println("first three masked records:")
	for r := 0; r < 3; r++ {
		fmt.Printf("  %v\n", best.Data.Records()[r])
	}
}
