// Quickstart: the 60-second tour of evoprot.
//
// Generate a categorical dataset, seed an initial population from the
// paper's masking grid, evolve it under the max(IL, DR) fitness, and
// inspect the best protection found.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"evoprot"
)

func main() {
	// 1. An original microdata file. Here a synthetic Adult stand-in;
	//    evoprot.LoadCSV("yours.csv") works the same way.
	orig, err := evoprot.GenerateDataset("adult", 300, 42)
	if err != nil {
		log.Fatal(err)
	}
	attrs, err := evoprot.ProtectedAttributes("adult") // EDUCATION, MARITAL-STATUS, OCCUPATION
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %d records, protecting %v\n\n", orig.Rows(), attrs)

	// 2. Evolve. Optimize seeds the population with the paper's Adult
	//    masking grid (86 protections), then runs the genetic algorithm.
	res, err := evoprot.Optimize(orig, attrs, evoprot.OptimizeOptions{
		Dataset:     "adult",
		Aggregator:  "max", // Eq. 2: score = max(IL, DR); lower is better
		Generations: 150,
		Seed:        42,
		Workers:     8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Results.
	first, last := res.History[0], res.History[len(res.History)-1]
	fmt.Printf("after %d generations (%d fitness evaluations):\n", res.Generations, res.Evaluations)
	fmt.Printf("  best score  %6.2f -> %6.2f\n", first.Min, last.Min)
	fmt.Printf("  mean score  %6.2f -> %6.2f\n", first.Mean, last.Mean)
	fmt.Printf("  worst score %6.2f -> %6.2f\n\n", first.Max, last.Max)

	best := res.Best
	fmt.Printf("best protection (from %s):\n", best.Origin)
	fmt.Printf("  information loss %6.2f\n", best.Eval.IL)
	fmt.Printf("  disclosure risk  %6.2f\n", best.Eval.DR)
	fmt.Printf("  score            %6.2f\n\n", best.Eval.Score)

	// 4. The masked file itself is a regular dataset: save or inspect it.
	fmt.Println("first three masked records:")
	for r := 0; r < 3; r++ {
		fmt.Printf("  %v\n", best.Data.Records()[r])
	}
}
