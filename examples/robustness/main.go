// Robustness: the paper's experiment 3 (Figures 17-20) — can the
// evolutionary algorithm recover good protections when the best initial
// individuals are withheld?
//
// Three runs on the Solar Flare population under the max(IL, DR) fitness:
// the full population, without the best 5%, and without the best 10%. The
// paper reports that the handicapped runs almost reach the full run's
// minimum score (gaps of 1.33 and 1.08 points).
//
//	go run ./examples/robustness [-full]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"evoprot"
)

func main() {
	full := flag.Bool("full", false, "paper scale (1066 records, 2000 generations)")
	flag.Parse()

	rows, gens := 300, 200
	if *full {
		rows, gens = 0, 2000
	}

	var baseline *evoprot.ExperimentReport
	for _, remove := range []float64{0, 0.05, 0.10} {
		rep, err := evoprot.RunExperiment(evoprot.ExperimentSpec{
			Dataset:        "flare",
			Rows:           rows,
			Aggregator:     "max",
			RemoveBestFrac: remove,
			Generations:    gens,
			Seed:           42,
			InitWorkers:    runtime.GOMAXPROCS(0),
		})
		if err != nil {
			log.Fatal(err)
		}
		if remove == 0 {
			baseline = rep
		}
		fmt.Println(rep.Summary())
		fmt.Println(rep.DispersionPlot(72, 16))
		if remove > 0 {
			gap := rep.FinalMin - baseline.FinalMin
			fmt.Printf(">>> min-score gap vs full population: %.2f points ", gap)
			fmt.Printf("(paper: 1.33 at 5%%, 1.08 at 10%%)\n\n")
		}
		fmt.Println("--------------------------------------------------------------")
	}
	fmt.Println("the handicapped populations re-discover protections close to the")
	fmt.Println("withheld optima — the paper's robustness conclusion (§3.3).")
}
