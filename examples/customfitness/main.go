// Custom fitness: the paper's §4 claims the approach "can be easily
// adapted to other fitness functions ... by just providing a different
// fitness evaluation function". This example demonstrates exactly that at
// the library level, twice over:
//
//  1. a custom Aggregator — a risk-averse weighted maximum that penalizes
//     disclosure risk 2x harder than information loss, and
//  2. a custom disclosure-risk Measure — a worst-case uniqueness measure —
//     added to the standard battery.
//
// go run ./examples/customfitness
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"evoprot"
	"evoprot/internal/core"
	"evoprot/internal/dataset"
	"evoprot/internal/experiment"
	"evoprot/internal/risk"
	"evoprot/internal/score"
)

// riskAverse scores a protection by max(IL, 2·DR): a statistical agency
// that fears re-identification twice as much as analytic damage.
type riskAverse struct{}

func (riskAverse) Name() string { return "risk-averse" }

func (riskAverse) Combine(il, dr float64) float64 {
	if 2*dr > il {
		return 2 * dr
	}
	return il
}

// uniqueness is an extra DR measure: the percentage of masked records
// whose protected-attribute combination is unique in the masked file —
// unique records are the classic re-identification targets.
type uniqueness struct{}

func (uniqueness) Name() string { return "UNIQ" }

func (uniqueness) Risk(orig, masked *dataset.Dataset, attrs []int) float64 {
	n := masked.Rows()
	if n == 0 || len(attrs) == 0 {
		return 0
	}
	counts := make(map[string]int, n)
	key := make([]byte, 0, 3*len(attrs))
	for r := 0; r < n; r++ {
		key = key[:0]
		for _, c := range attrs {
			v := masked.At(r, c)
			key = append(key, byte(c), byte(v>>8), byte(v))
		}
		counts[string(key)]++
	}
	unique := 0
	for _, c := range counts {
		if c == 1 {
			unique++
		}
	}
	return 100 * float64(unique) / float64(n)
}

func main() {
	orig, err := evoprot.GenerateDataset("german", 300, 7)
	if err != nil {
		log.Fatal(err)
	}
	attrNames, _ := evoprot.ProtectedAttributes("german")
	attrs, _ := orig.Schema().Indices(attrNames...)

	// Build an evaluator with the custom aggregator AND the extended
	// disclosure-risk battery.
	eval, err := score.NewEvaluator(orig, attrs, score.Config{
		DR:         append(risk.Default(), uniqueness{}),
		Aggregator: riskAverse{},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Seed with the paper's German grid and evolve — nothing else changes.
	pop, err := experiment.BuildPopulation(orig, attrs, "german", 7)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(eval, pop, core.Config{
		Generations: 150,
		Seed:        7,
		InitWorkers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	best := res.Best
	fmt.Printf("custom fitness %q over %d individuals, %d generations\n",
		eval.Aggregator().Name(), len(res.Population), res.Generations)
	fmt.Printf("best: IL=%.2f DR=%.2f score=%.2f (origin %s)\n",
		best.Eval.IL, best.Eval.DR, best.Eval.Score, best.Origin)
	fmt.Printf("  disclosure-risk breakdown: ")
	for _, name := range []string{"ID", "DBRL", "PRL", "RSRL", "UNIQ"} {
		fmt.Printf("%s=%.1f ", name, best.Eval.DRParts[name])
	}
	fmt.Println()

	// Under a risk-averse fitness the winning protections have DR well
	// below IL — compare with a symmetric run.
	symmetric, err := evoprot.Optimize(orig, attrNames, evoprot.OptimizeOptions{
		Dataset:     "german",
		Aggregator:  "max",
		Generations: 150,
		Seed:        7,
		Workers:     runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsymmetric max(IL,DR) best:    IL=%.2f DR=%.2f\n",
		symmetric.Best.Eval.IL, symmetric.Best.Eval.DR)
	fmt.Printf("risk-averse max(IL,2DR) best: IL=%.2f DR=%.2f  <- pushed toward lower DR\n",
		best.Eval.IL, best.Eval.DR)
}
