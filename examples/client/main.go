// The client example drives a running evoprotd end to end: submit a job,
// follow its live per-generation event stream, and fetch the final
// result — the protected dataset and the trajectory that produced it.
//
// Start a server, then run the client against it:
//
//	go run ./cmd/evoprotd -addr 127.0.0.1:8080 -data /tmp/evoprotd &
//	go run ./examples/client -server http://127.0.0.1:8080 -dataset flare -gens 120 -islands 2
//
// The event stream is plain NDJSON and replayable: interrupt the client
// and rerun it with -offset <n> to pick the feed back up where it
// stopped, or rerun it against a finished job to replay the whole run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"evoprot"
	"evoprot/internal/serve"
)

func main() {
	var (
		server  = flag.String("server", "http://127.0.0.1:8080", "evoprotd base URL")
		dataset = flag.String("dataset", "flare", "built-in dataset to protect")
		rows    = flag.Int("rows", 200, "dataset rows (0 = paper scale)")
		gens    = flag.Int("gens", 120, "generation budget")
		islands = flag.Int("islands", 2, "islands")
		seed    = flag.Uint64("seed", 42, "run seed")
		every   = flag.Int("print-every", 10, "print one progress line per N generations")
		bestCSV = flag.String("best", "", "write the protected dataset to this CSV")
	)
	flag.Parse()
	if *every < 1 {
		*every = 1
	}

	spec := evoprot.JobSpec{
		Dataset:     *dataset,
		Rows:        *rows,
		Generations: *gens,
		Islands:     *islands,
		Seed:        *seed,
	}
	body, _ := json.Marshal(spec)

	// Submit.
	resp, err := http.Post(*server+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var status serve.JobStatus
	decodeOrDie(resp, http.StatusCreated, &status)
	fmt.Printf("job %s %s (dataset %s, %d generations, %d islands)\n",
		status.ID, status.State, spec.Dataset, spec.Generations, spec.Islands)

	// Follow the event stream from offset 0. The server keeps the
	// connection open until the job is terminal and the feed is drained.
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?offset=0", *server, status.ID))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("events: HTTP %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev evoprot.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatalf("bad event line: %v", err)
		}
		switch {
		case ev.Err != "":
			fmt.Printf("  [seq %d] server warning: %s\n", ev.Seq, ev.Err)
		case ev.Done:
			fmt.Printf("  [seq %d] island %d done: best %.2f (stop: %s)\n",
				ev.Seq, ev.Island, ev.Stats.Min, ev.Stop)
		case ev.Stats.Gen%*every == 0:
			fmt.Printf("  [seq %d] island %d gen %4d: best %.2f mean %.2f\n",
				ev.Seq, ev.Island, ev.Stats.Gen, ev.Stats.Min, ev.Stats.Mean)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	// Fetch the result: trajectory, summary, and the protected dataset.
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", *server, status.ID))
	if err != nil {
		log.Fatal(err)
	}
	var result serve.JobResult
	decodeOrDie(resp, http.StatusOK, &result)
	fmt.Printf("result: %s after %d generations, %d evaluations (stop: %s)\n",
		result.State, result.Generations, result.Evaluations, result.StopReason)
	fmt.Printf("best: score=%.2f IL=%.2f DR=%.2f origin=%s island=%d\n",
		result.Best.Score, result.Best.IL, result.Best.DR, result.Best.Origin, result.BestIsland)
	if *bestCSV != "" {
		if err := os.WriteFile(*bestCSV, []byte(result.DatasetCSV), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("protected dataset written to %s\n", *bestCSV)
	}
}

func decodeOrDie(resp *http.Response, want int, v any) {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		log.Fatalf("HTTP %s: %s", resp.Status, apiErr.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
