// Command evoprot runs the evolutionary optimizer end to end: build or
// load an initial population of protections, evolve it — optionally as
// several concurrent islands exchanging elites, optionally checkpointing
// so long runs survive restarts — and report the best protection found.
// Ctrl-C (or -timeout) cancels gracefully: the run stops at the next
// generation boundary and still reports (and saves) the best so far.
//
// Islands may be heterogeneous (-niches spreads a preset of search
// behaviors across them, -per-island overrides single islands as JSON)
// and the migration schedule may adapt to cross-island divergence
// (-adaptive); both stay bit-reproducible from -seed.
//
//	evoprot -dataset adult -gens 400 -seed 42 -plots
//	evoprot -dataset flare -gens 2000 -islands 4 -migrate-every 50
//	evoprot -dataset flare -gens 2000 -islands 4 -niches explore-exploit -adaptive
//	evoprot -orig mydata.csv -attrs A,B,C -grid flare -gens 200 -best best.csv
//	evoprot -dataset flare -gens 5000 -checkpoint run.ckpt -checkpoint-every 500
//	evoprot -dataset flare -gens 5000 -resume run.ckpt -timeout 2m
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"evoprot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evoprot:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evoprot", flag.ContinueOnError)
	var (
		name      = fs.String("dataset", "", "built-in dataset: housing|german|flare|adult")
		origCSV   = fs.String("orig", "", "original CSV (alternative to -dataset)")
		attrCSV   = fs.String("attrs", "", "attributes to protect when using -orig")
		grid      = fs.String("grid", "", "masking grid for -orig runs (defaults to -dataset, else flare)")
		rows      = fs.Int("rows", 0, "records when generating (0 = paper scale)")
		agg       = fs.String("agg", "max", "fitness aggregation: mean | max | euclidean | weighted:<w>")
		objective = fs.String("objective", "", "selection objective: scalar (default) | pareto (NSGA-II over raw IL/DR)")
		paretoRef = fs.String("pareto-ref", "", `hypervolume reference point for -objective pareto as "il,dr" (default 100,100)`)
		mlTarget  = fs.String("ml-target", "", "append the ML-utility measure: naive Bayes accuracy drop predicting this attribute")
		gens      = fs.Int("gens", 400, "generations per island")
		seed      = fs.Uint64("seed", 42, "run seed")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "initial-evaluation workers")
		stall     = fs.Int("stall", 0, "stop an island after N generations without improvement (0 = off)")
		nIslands  = fs.Int("islands", 0, "concurrently evolving islands (0 = one, or one per -per-island override)")
		migEvery  = fs.Int("migrate-every", 0, "generations between island migrations (0 = default 25)")
		migrants  = fs.Int("migrants", 0, "elite individuals exchanged per migration (0 = default 2)")
		topoName  = fs.String("topology", "ring", "migration topology: ring | broadcast")
		niches    = fs.String("niches", "", "heterogeneous-island preset: "+strings.Join(evoprot.NicheNames(), " | "))
		perIsland = fs.String("per-island", "", `per-island engine overrides as a JSON array, e.g. '[{},{"selection":"rank","mutation_rate":0.7}]'`)
		adaptive  = fs.Bool("adaptive", false, "adapt the migration schedule to cross-island divergence (default bounds)")
		timeout   = fs.Duration("timeout", 0, "overall run deadline, e.g. 90s or 5m (0 = none)")
		best      = fs.String("best", "", "write the best protection to this CSV")
		plots     = fs.Bool("plots", false, "print dispersion and evolution plots")
		ckpt      = fs.String("checkpoint", "", "write engine snapshots to this path")
		ckptEvery = fs.Int("checkpoint-every", 500, "snapshot interval in generations")
		resume    = fs.String("resume", "", "resume from a snapshot written by -checkpoint")
		noDelta   = fs.Bool("no-delta", false, "disable incremental (delta) offspring evaluation; identical results, much slower")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	orig, attrNames, gridName, err := resolveInput(*name, *origCSV, *attrCSV, *grid, *rows, *seed)
	if err != nil {
		return err
	}
	topo, err := evoprot.TopologyByName(*topoName)
	if err != nil {
		return err
	}
	options := []evoprot.Option{
		evoprot.WithGrid(gridName),
		evoprot.WithAggregator(*agg),
		evoprot.WithGenerations(*gens),
		evoprot.WithSeed(*seed),
		evoprot.WithWorkers(*workers),
		evoprot.WithEarlyStop(*stall),
		evoprot.WithMigration(*migEvery, *migrants),
		evoprot.WithTopology(topo),
	}
	if *objective != "" {
		options = append(options, evoprot.WithObjective(*objective))
	}
	if *mlTarget != "" {
		options = append(options, evoprot.WithMLUtility(*mlTarget))
	}
	if *paretoRef != "" {
		var il, dr float64
		if _, err := fmt.Sscanf(*paretoRef, "%f,%f", &il, &dr); err != nil {
			return fmt.Errorf(`parsing -pareto-ref: want "il,dr", got %q`, *paretoRef)
		}
		options = append(options, evoprot.WithParetoRef(il, dr))
	}
	if *nIslands != 0 {
		// Left unset, -per-island implies one island per override (and a
		// single island otherwise); forcing WithIslands(1) here would
		// defeat that. Non-zero values — including invalid negatives —
		// pass through to validation.
		options = append(options, evoprot.WithIslands(*nIslands))
	}
	if *niches != "" {
		options = append(options, evoprot.WithNiches(*niches))
	}
	if *perIsland != "" {
		var overrides []evoprot.IslandConfig
		if err := json.Unmarshal([]byte(*perIsland), &overrides); err != nil {
			return fmt.Errorf("parsing -per-island: %w", err)
		}
		options = append(options, evoprot.WithPerIsland(overrides...))
	}
	if *adaptive {
		options = append(options, evoprot.WithAdaptiveMigration(evoprot.AdaptiveMigration{}))
	}
	if *noDelta {
		options = append(options, evoprot.WithoutDelta())
	}
	if *ckpt != "" {
		options = append(options, evoprot.WithCheckpoint(*ckpt, *ckptEvery))
	}
	runner, err := evoprot.NewRunner(orig, attrNames, options...)
	if err != nil {
		return err
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		err = runner.Resume(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "resumed %d island(s) at generation %d\n", runner.Islands(), runner.Generation())
	}

	res, runErr := runner.Run(ctx)
	ckptFailed := errors.Is(runErr, evoprot.ErrCheckpoint)
	var exitErr error
	switch {
	case runErr == nil:
	case errors.Is(runErr, context.Canceled):
		fmt.Fprintln(stdout, "interrupted; reporting best so far")
	case errors.Is(runErr, context.DeadlineExceeded):
		fmt.Fprintln(stdout, "timeout reached; reporting best so far")
	default:
		if res == nil {
			return runErr
		}
		// The run itself finished but something else failed (e.g. the
		// final checkpoint write); still report the result below.
	}
	if runErr != nil && (ckptFailed || (res != nil && ctx.Err() == nil)) {
		// Surface non-context failures after the report.
		exitErr = runErr
	}
	if res == nil {
		fmt.Fprintln(stdout, "cancelled before any evolution")
		return exitErr
	}
	if *ckpt != "" {
		if ckptFailed {
			fmt.Fprintf(stdout, "final checkpoint write FAILED; %s may be stale\n", *ckpt)
		} else {
			fmt.Fprintf(stdout, "final checkpoint written to %s\n", *ckpt)
		}
	}
	if *adaptive {
		every, mig := runner.EffectiveMigration()
		fmt.Fprintf(stdout, "adaptive migration settled at every %d generations, %d migrant(s)\n", every, mig)
	}
	report(stdout, res, *plots)
	if *best != "" {
		if err := evoprot.SaveCSV(res.Best.Data, *best); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "best protection written to %s\n", *best)
	}
	return exitErr
}

// report prints the run summary: the best island's trajectory plus, for
// multi-island runs, one line per island.
func report(w io.Writer, res *evoprot.RunResult, plots bool) {
	lead := res.Islands[res.BestIsland]
	if len(lead.History) == 0 {
		fmt.Fprintln(w, "no generations executed")
		return
	}
	first := lead.History[0]
	last := lead.History[len(lead.History)-1]
	fmt.Fprintf(w, "evolved %d individuals for %d generations (%d evaluations, stop: %s)\n",
		len(lead.Population), res.Generations, res.Evaluations, res.StopReason)
	if len(res.Islands) > 1 {
		fmt.Fprintf(w, "%d islands, %d accepted migrations; per-island best:\n", len(res.Islands), res.Migrations)
		for i, ir := range res.Islands {
			marker := " "
			if i == res.BestIsland {
				marker = "*"
			}
			fmt.Fprintf(w, " %s island %d: best %7.2f after %d generations (%d/%d offspring accepted, stop: %s)\n",
				marker, i, ir.Best.Eval.Score, ir.Generations, ir.AcceptedOffspring, ir.TotalOffspring, ir.StopReason)
		}
	} else {
		fmt.Fprintf(w, "  offspring accepted: %d/%d\n", lead.AcceptedOffspring, lead.TotalOffspring)
	}
	fmt.Fprintf(w, "  max score:  %7.2f -> %7.2f\n", first.Max, last.Max)
	fmt.Fprintf(w, "  mean score: %7.2f -> %7.2f\n", first.Mean, last.Mean)
	fmt.Fprintf(w, "  min score:  %7.2f -> %7.2f\n", first.Min, last.Min)
	fmt.Fprintf(w, "best protection: origin=%s IL=%.2f DR=%.2f score=%.2f\n",
		res.Best.Origin, res.Best.Eval.IL, res.Best.Eval.DR, res.Best.Eval.Score)
	if front := last.Front; front != nil {
		fmt.Fprintf(w, "pareto front: %d point(s), hypervolume %.2f\n", front.Size, front.Hypervolume)
	}
	if plots {
		printPlots(w, lead)
	}
}

// resolveInput loads or generates the original dataset and resolves the
// protected attributes and masking grid.
func resolveInput(name, origCSV, attrCSV, grid string, rows int, seed uint64) (*evoprot.Dataset, []string, string, error) {
	switch {
	case name != "":
		orig, err := evoprot.GenerateDataset(name, rows, seed)
		if err != nil {
			return nil, nil, "", err
		}
		attrNames, err := evoprot.ProtectedAttributes(name)
		if err != nil {
			return nil, nil, "", err
		}
		if grid == "" {
			grid = name
		}
		return orig, attrNames, grid, nil
	case origCSV != "":
		orig, err := evoprot.LoadCSV(origCSV)
		if err != nil {
			return nil, nil, "", err
		}
		if attrCSV == "" {
			return nil, nil, "", fmt.Errorf("-attrs is required with -orig")
		}
		if grid == "" {
			grid = "flare" // the 3-attribute grid with the smallest domains
		}
		return orig, strings.Split(attrCSV, ","), grid, nil
	default:
		return nil, nil, "", fmt.Errorf("one of -dataset or -orig is required")
	}
}

func printPlots(w io.Writer, res *evoprot.Result) {
	fmt.Fprintln(w)
	maxS := make([]float64, len(res.History))
	meanS := make([]float64, len(res.History))
	minS := make([]float64, len(res.History))
	for i, gs := range res.History {
		maxS[i], meanS[i], minS[i] = gs.Max, gs.Mean, gs.Min
	}
	fmt.Fprintln(w, evoprot.RenderEvolution(maxS, meanS, minS, 72, 18))
	fmt.Fprintln(w, evoprot.RenderDispersion(res.Population, 72, 18))
	if len(res.History) > 0 {
		if front := res.History[len(res.History)-1].Front; front != nil {
			fmt.Fprintln(w, evoprot.RenderFront(res.Population, front.Pairs, 72, 18))
		}
	}
}
