// Command evoprot runs the evolutionary optimizer end to end: build or
// load an initial population of protections, evolve it (optionally
// checkpointing so long runs survive restarts), and report the best
// protection found.
//
//	evoprot -dataset adult -gens 400 -seed 42 -plots
//	evoprot -orig mydata.csv -attrs A,B,C -grid flare -gens 200 -best best.csv
//	evoprot -dataset flare -gens 5000 -checkpoint run.ckpt -checkpoint-every 500
//	evoprot -dataset flare -gens 5000 -resume run.ckpt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"evoprot"
	"evoprot/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evoprot:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evoprot", flag.ContinueOnError)
	var (
		name      = fs.String("dataset", "", "built-in dataset: housing|german|flare|adult")
		origCSV   = fs.String("orig", "", "original CSV (alternative to -dataset)")
		attrCSV   = fs.String("attrs", "", "attributes to protect when using -orig")
		grid      = fs.String("grid", "", "masking grid for -orig runs (defaults to -dataset, else flare)")
		rows      = fs.Int("rows", 0, "records when generating (0 = paper scale)")
		agg       = fs.String("agg", "max", "fitness aggregation: mean | max | euclidean | weighted:<w>")
		gens      = fs.Int("gens", 400, "generations")
		seed      = fs.Uint64("seed", 42, "run seed")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "initial-evaluation workers")
		stall     = fs.Int("stall", 0, "stop after N generations without improvement (0 = off)")
		best      = fs.String("best", "", "write the best protection to this CSV")
		plots     = fs.Bool("plots", false, "print dispersion and evolution plots")
		ckpt      = fs.String("checkpoint", "", "write engine snapshots to this path")
		ckptEvery = fs.Int("checkpoint-every", 500, "snapshot interval in generations")
		resume    = fs.String("resume", "", "resume from a snapshot written by -checkpoint")
		noDelta   = fs.Bool("no-delta", false, "disable incremental (delta) offspring evaluation; identical results, much slower")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	orig, attrNames, gridName, err := resolveInput(*name, *origCSV, *attrCSV, *grid, *rows, *seed)
	if err != nil {
		return err
	}
	aggregator, err := evoprot.AggregatorByName(*agg)
	if err != nil {
		return err
	}
	eval, err := evoprot.NewEvaluator(orig, attrNames, evoprot.EvaluatorConfig{
		Aggregator: aggregator,
	})
	if err != nil {
		return err
	}

	cfg := evoprot.EngineConfig{
		Generations:         *gens,
		Seed:                *seed,
		InitWorkers:         *workers,
		NoImprovementWindow: *stall,
		DisableDelta:        *noDelta,
	}
	var engine *evoprot.Engine
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		engine, err = evoprot.ResumeEngine(eval, f, cfg)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "resumed at generation %d\n", engine.Generation())
	} else {
		attrs, err := orig.Schema().Indices(attrNames...)
		if err != nil {
			return err
		}
		pop, err := experiment.BuildPopulation(orig, attrs, gridName, *seed)
		if err != nil {
			return err
		}
		engine, err = evoprot.NewEngine(eval, pop, cfg)
		if err != nil {
			return err
		}
	}
	if *ckpt != "" {
		every := *ckptEvery
		if every < 1 {
			every = 1
		}
		engine.SetOnGeneration(func(gs evoprot.GenStats) {
			if gs.Gen%every == 0 {
				if err := writeCheckpoint(engine, *ckpt); err != nil {
					fmt.Fprintf(stdout, "checkpoint failed: %v\n", err)
				}
			}
		})
	}

	res := engine.Run()
	if *ckpt != "" {
		if err := writeCheckpoint(engine, *ckpt); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "final checkpoint written to %s\n", *ckpt)
	}

	first := res.History[0]
	last := res.History[len(res.History)-1]
	fmt.Fprintf(stdout, "evolved %d individuals for %d generations (%d evaluations, %d/%d offspring accepted)\n",
		len(res.Population), res.Generations, res.Evaluations, res.AcceptedOffspring, res.TotalOffspring)
	fmt.Fprintf(stdout, "  max score:  %7.2f -> %7.2f\n", first.Max, last.Max)
	fmt.Fprintf(stdout, "  mean score: %7.2f -> %7.2f\n", first.Mean, last.Mean)
	fmt.Fprintf(stdout, "  min score:  %7.2f -> %7.2f\n", first.Min, last.Min)
	fmt.Fprintf(stdout, "best protection: origin=%s IL=%.2f DR=%.2f score=%.2f\n",
		res.Best.Origin, res.Best.Eval.IL, res.Best.Eval.DR, res.Best.Eval.Score)

	if *plots {
		printPlots(stdout, res)
	}
	if *best != "" {
		if err := evoprot.SaveCSV(res.Best.Data, *best); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "best protection written to %s\n", *best)
	}
	return nil
}

// resolveInput loads or generates the original dataset and resolves the
// protected attributes and masking grid.
func resolveInput(name, origCSV, attrCSV, grid string, rows int, seed uint64) (*evoprot.Dataset, []string, string, error) {
	switch {
	case name != "":
		orig, err := evoprot.GenerateDataset(name, rows, seed)
		if err != nil {
			return nil, nil, "", err
		}
		attrNames, err := evoprot.ProtectedAttributes(name)
		if err != nil {
			return nil, nil, "", err
		}
		if grid == "" {
			grid = name
		}
		return orig, attrNames, grid, nil
	case origCSV != "":
		orig, err := evoprot.LoadCSV(origCSV)
		if err != nil {
			return nil, nil, "", err
		}
		if attrCSV == "" {
			return nil, nil, "", fmt.Errorf("-attrs is required with -orig")
		}
		if grid == "" {
			grid = "flare" // the 3-attribute grid with the smallest domains
		}
		return orig, strings.Split(attrCSV, ","), grid, nil
	default:
		return nil, nil, "", fmt.Errorf("one of -dataset or -orig is required")
	}
}

func writeCheckpoint(engine *evoprot.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := engine.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func printPlots(w io.Writer, res *evoprot.Result) {
	fmt.Fprintln(w)
	maxS := make([]float64, len(res.History))
	meanS := make([]float64, len(res.History))
	minS := make([]float64, len(res.History))
	for i, gs := range res.History {
		maxS[i], meanS[i], minS[i] = gs.Max, gs.Mean, gs.Min
	}
	fmt.Fprintln(w, evoprot.RenderEvolution(maxS, meanS, minS, 72, 18))
	fmt.Fprintln(w, evoprot.RenderDispersion(res.Population, 72, 18))
}
