package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evoprot"
)

func TestRunBuiltinDataset(t *testing.T) {
	bestPath := filepath.Join(t.TempDir(), "best.csv")
	var out strings.Builder
	err := run([]string{
		"-dataset", "flare", "-rows", "80", "-gens", "15", "-seed", "3",
		"-best", bestPath, "-plots",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"evolved 104 individuals", "best protection:", "M=max"} {
		if !strings.Contains(report, want) {
			t.Errorf("output missing %q:\n%s", want, report)
		}
	}
	best, err := evoprot.LoadCSV(bestPath)
	if err != nil {
		t.Fatal(err)
	}
	if best.Rows() != 80 {
		t.Fatalf("best rows = %d", best.Rows())
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out strings.Builder
	err := run([]string{
		"-dataset", "flare", "-rows", "80", "-gens", "10", "-seed", "3",
		"-checkpoint", ckpt, "-checkpoint-every", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	out.Reset()
	err = run([]string{
		"-dataset", "flare", "-rows", "80", "-gens", "5", "-seed", "3",
		"-resume", ckpt,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed at generation 10") {
		t.Fatalf("resume banner missing:\n%s", out.String())
	}
}

func TestRunExternalCSV(t *testing.T) {
	dir := t.TempDir()
	origPath := filepath.Join(dir, "orig.csv")
	d, _ := evoprot.GenerateDataset("german", 70, 5)
	if err := evoprot.SaveCSV(d, origPath); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{
		"-orig", origPath, "-attrs", "EXISTACC,SAVINGS,PRESEMPLOY",
		"-grid", "german", "-gens", "8", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "evolved 104 individuals") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},                                     // no input
		{"-dataset", "nosuch"},                 // unknown dataset
		{"-orig", "absent.csv", "-attrs", "A"}, // missing file
		{"-dataset", "flare", "-rows", "50", "-agg", "median"},  // bad aggregator
		{"-dataset", "flare", "-rows", "50", "-resume", "nope"}, // missing checkpoint
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
