package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evoprot"
)

func runCLI(t *testing.T, args []string, out *strings.Builder) error {
	t.Helper()
	return run(context.Background(), args, out)
}

func TestRunBuiltinDataset(t *testing.T) {
	bestPath := filepath.Join(t.TempDir(), "best.csv")
	var out strings.Builder
	err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "15", "-seed", "3",
		"-best", bestPath, "-plots",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"evolved 104 individuals", "best protection:", "M=max"} {
		if !strings.Contains(report, want) {
			t.Errorf("output missing %q:\n%s", want, report)
		}
	}
	best, err := evoprot.LoadCSV(bestPath)
	if err != nil {
		t.Fatal(err)
	}
	if best.Rows() != 80 {
		t.Fatalf("best rows = %d", best.Rows())
	}
}

func TestRunIslands(t *testing.T) {
	var out strings.Builder
	err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "20", "-seed", "3",
		"-islands", "3", "-migrate-every", "5", "-topology", "broadcast",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"3 islands", "island 0:", "island 2:", "best protection:"} {
		if !strings.Contains(report, want) {
			t.Errorf("output missing %q:\n%s", want, report)
		}
	}
}

// TestRunHeterogeneousIslands: the -niches/-adaptive flags drive a niched
// adaptive run, and -per-island without -islands runs one island per
// override (the implied-count contract the flag's help text documents).
func TestRunHeterogeneousIslands(t *testing.T) {
	var out strings.Builder
	err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "20", "-seed", "3",
		"-islands", "3", "-migrate-every", "5", "-niches", "explore-exploit", "-adaptive",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"adaptive migration settled at", "3 islands", "best protection:"} {
		if !strings.Contains(report, want) {
			t.Errorf("output missing %q:\n%s", want, report)
		}
	}

	out.Reset()
	err = runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "10", "-seed", "3",
		"-per-island", `[{},{"selection":"rank","mutation_rate":0.7}]`,
	}, &out)
	if err != nil {
		t.Fatalf("-per-island without -islands: %v", err)
	}
	if !strings.Contains(out.String(), "2 islands") {
		t.Errorf("implied island count not honoured:\n%s", out.String())
	}

	// -niches without -islands is a rejected silent no-op.
	if err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "10", "-niches", "explore-exploit",
	}, &out); err == nil {
		t.Error("-niches without -islands accepted")
	}
}

// TestRunParetoObjective: -objective pareto reports and plots the front,
// -pareto-ref is parsed as "il,dr", malformed values are rejected, and
// the scalar-pareto niche preset drives a mixed-objective archipelago.
func TestRunParetoObjective(t *testing.T) {
	var out strings.Builder
	err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "15", "-seed", "3",
		"-objective", "pareto", "-pareto-ref", "120,110", "-plots",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"pareto front:", "hypervolume", "@=front", "best protection:"} {
		if !strings.Contains(report, want) {
			t.Errorf("output missing %q:\n%s", want, report)
		}
	}

	for name, args := range map[string][]string{
		"malformed ref":  {"-dataset", "flare", "-rows", "80", "-gens", "5", "-pareto-ref", "abc"},
		"bad objective":  {"-dataset", "flare", "-rows", "80", "-gens", "5", "-objective", "lexicographic"},
		"non-finite ref": {"-dataset", "flare", "-rows", "80", "-gens", "5", "-objective", "pareto", "-pareto-ref", "-5,100"},
	} {
		if err := runCLI(t, args, &out); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	out.Reset()
	err = runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "20", "-seed", "3",
		"-islands", "3", "-migrate-every", "5", "-niches", "scalar-pareto",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 islands") {
		t.Errorf("scalar-pareto niche run malformed:\n%s", out.String())
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out strings.Builder
	err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "10", "-seed", "3",
		"-checkpoint", ckpt, "-checkpoint-every", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	out.Reset()
	err = runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "5", "-seed", "3",
		"-resume", ckpt,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed 1 island(s) at generation 10") {
		t.Fatalf("resume banner missing:\n%s", out.String())
	}
}

func TestRunMultiIslandCheckpointAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out strings.Builder
	err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "10", "-seed", "3",
		"-islands", "2", "-migrate-every", "5",
		"-checkpoint", ckpt, "-checkpoint-every", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "5", "-seed", "3",
		"-islands", "2", "-migrate-every", "5",
		"-resume", ckpt,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed 2 island(s) at generation 10") {
		t.Fatalf("resume banner missing:\n%s", out.String())
	}
}

func TestRunCancelledContextReportsBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts: zero generations, still a report
	var out strings.Builder
	err := run(ctx, []string{"-dataset", "flare", "-rows", "80", "-gens", "50", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interrupted; reporting best so far") {
		t.Fatalf("cancel banner missing:\n%s", out.String())
	}
}

func TestRunTimeoutFlag(t *testing.T) {
	var out strings.Builder
	err := runCLI(t, []string{
		"-dataset", "flare", "-rows", "80", "-gens", "1000000", "-seed", "3",
		"-timeout", "300ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "timeout reached; reporting best so far") {
		t.Fatalf("timeout banner missing:\n%s", out.String())
	}
}

func TestRunExternalCSV(t *testing.T) {
	dir := t.TempDir()
	origPath := filepath.Join(dir, "orig.csv")
	d, _ := evoprot.GenerateDataset("german", 70, 5)
	if err := evoprot.SaveCSV(d, origPath); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := runCLI(t, []string{
		"-orig", origPath, "-attrs", "EXISTACC,SAVINGS,PRESEMPLOY",
		"-grid", "german", "-gens", "8", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "evolved 104 individuals") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},                                     // no input
		{"-dataset", "nosuch"},                 // unknown dataset
		{"-orig", "absent.csv", "-attrs", "A"}, // missing file
		{"-dataset", "flare", "-rows", "50", "-agg", "median"},       // bad aggregator
		{"-dataset", "flare", "-rows", "50", "-resume", "nope"},      // missing checkpoint
		{"-dataset", "flare", "-rows", "50", "-topology", "star"},    // bad topology
		{"-dataset", "flare", "-rows", "50", "-islands", "-2"},       // bad island count
		{"-dataset", "flare", "-rows", "50", "-migrate-every", "-1"}, // bad epoch
	}
	for _, args := range cases {
		if err := runCLI(t, args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
