package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"evoprot"
)

func TestPaperFiguresEnumeratesAllTwenty(t *testing.T) {
	figs := paperFigures(100, 10, 1, 1)
	if len(figs) != 20 {
		t.Fatalf("figures = %d, want 20", len(figs))
	}
	seen := make(map[string]bool)
	kinds := map[string]int{}
	exps := map[int]int{}
	for _, f := range figs {
		if seen[f.id] {
			t.Fatalf("duplicate figure id %s", f.id)
		}
		seen[f.id] = true
		kinds[f.kind]++
		exps[f.exp]++
	}
	if kinds["dispersion"] != 10 || kinds["evolution"] != 10 {
		t.Fatalf("kinds = %v", kinds)
	}
	if exps[1] != 8 || exps[2] != 8 || exps[3] != 4 {
		t.Fatalf("experiments = %v", exps)
	}
}

func TestPaperFiguresShareRuns(t *testing.T) {
	figs := paperFigures(100, 10, 1, 1)
	specs := make(map[string]int)
	for _, f := range figs {
		specs[f.spec.Name()]++
	}
	// 10 distinct runs back 20 figures: every spec backs exactly 2.
	if len(specs) != 10 {
		t.Fatalf("distinct specs = %d, want 10", len(specs))
	}
	for name, count := range specs {
		if count != 2 {
			t.Fatalf("spec %s backs %d figures, want 2", name, count)
		}
	}
}

func TestWriteFigureAndTables(t *testing.T) {
	dir := t.TempDir()
	rep, err := evoprot.RunExperiment(evoprot.ExperimentSpec{
		Dataset:     "flare",
		Rows:        80,
		Aggregator:  "max",
		Generations: 10,
		Seed:        3,
		InitWorkers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	figs := paperFigures(80, 10, 3, 1)
	for _, f := range figs[:2] { // one dispersion, one evolution
		if err := writeFigure(dir, f, rep); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 2 figures x (csv + txt)
		t.Fatalf("files = %d, want 4", len(entries))
	}
	for _, e := range entries {
		info, _ := e.Info()
		if info.Size() == 0 {
			t.Fatalf("empty artifact %s", e.Name())
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig01_adult_dispersion.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,il,dr") {
		t.Fatalf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}

	var summary strings.Builder
	writeTables(&summary, []*evoprot.ExperimentReport{rep})
	if !strings.Contains(summary.String(), "Improvement table") {
		t.Fatalf("tables missing:\n%s", summary.String())
	}
	// No tables for an empty report set.
	var empty strings.Builder
	writeTables(&empty, nil)
	if empty.Len() != 0 {
		t.Fatalf("tables written for no reports: %q", empty.String())
	}
}
