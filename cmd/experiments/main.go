// Command experiments regenerates every figure and in-text table of the
// paper's evaluation (§3) on the synthetic substrate, writing per-figure
// CSV series, ASCII renderings, and a summary of the improvement and
// timing tables.
//
//	experiments -out out/                       # reduced scale, fast
//	experiments -out out/ -full                 # paper scale (minutes)
//	experiments -out out/ -exp 2 -dataset flare # one experiment, one dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"evoprot"
	"evoprot/internal/experiment"
)

// figure ties one paper figure/table row to an experiment spec.
type figure struct {
	id      string
	kind    string // "dispersion" | "evolution"
	exp     int    // experiment number 1..3
	dataset string
	spec    evoprot.ExperimentSpec
}

func main() {
	var (
		out     = flag.String("out", "out", "output directory")
		full    = flag.Bool("full", false, "paper scale (1000+ records, 2000 generations)")
		rows    = flag.Int("rows", 0, "record count override (0 = preset)")
		gens    = flag.Int("gens", 0, "generation override (0 = preset)")
		seed    = flag.Uint64("seed", 42, "base seed")
		expFlag = flag.Int("exp", 0, "experiment filter: 1 (Eq.1), 2 (Eq.2), 3 (robustness); 0 = all")
		dsFlag  = flag.String("dataset", "", "dataset filter: housing|german|flare|adult")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "initial-evaluation workers")
	)
	flag.Parse()

	presetRows, presetGens := 300, 150
	if *full {
		presetRows, presetGens = 0, 2000 // 0 rows = paper record counts
	}
	if *rows != 0 {
		presetRows = *rows
	}
	if *gens != 0 {
		presetGens = *gens
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	figures := paperFigures(presetRows, presetGens, *seed, *workers)
	var summary strings.Builder
	summary.WriteString("# Experiment summary\n\n")
	reports := make(map[string]*evoprot.ExperimentReport)
	var ordered []*evoprot.ExperimentReport

	for _, fig := range figures {
		if *expFlag != 0 && fig.exp != *expFlag {
			continue
		}
		if *dsFlag != "" && fig.dataset != *dsFlag {
			continue
		}
		key := fig.spec.Name()
		rep, ok := reports[key]
		if !ok {
			fmt.Printf("running %-16s ...", key)
			var err error
			rep, err = evoprot.RunExperiment(fig.spec)
			if err != nil {
				fatal(err)
			}
			reports[key] = rep
			ordered = append(ordered, rep)
			fmt.Printf(" done in %v (%d evaluations)\n", rep.Duration.Round(time.Millisecond), rep.Evaluations)
			summary.WriteString("## " + key + "\n\n```\n" + rep.Summary() + "```\n\n")
		}
		if err := writeFigure(*out, fig, rep); err != nil {
			fatal(err)
		}
	}

	writeTables(&summary, ordered)
	sumPath := filepath.Join(*out, "summary.md")
	if err := os.WriteFile(sumPath, []byte(summary.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("figures and tables written to %s (summary: %s)\n", *out, sumPath)
}

// paperFigures enumerates the paper's 20 figures. Experiments share runs:
// each (dataset, aggregator, removal) spec backs one dispersion and one
// evolution figure.
func paperFigures(rows, gens int, seed uint64, workers int) []figure {
	mk := func(dataset, agg string, remove float64) evoprot.ExperimentSpec {
		return evoprot.ExperimentSpec{
			Dataset:        dataset,
			Rows:           rows,
			Aggregator:     agg,
			RemoveBestFrac: remove,
			Generations:    gens,
			Seed:           seed,
			InitWorkers:    workers,
		}
	}
	var figs []figure
	add := func(id, kind string, exp int, dataset string, spec evoprot.ExperimentSpec) {
		figs = append(figs, figure{id: id, kind: kind, exp: exp, dataset: dataset, spec: spec})
	}
	// Experiment 1 (Eq. 1 mean): Figures 1-8.
	add("fig01", "dispersion", 1, "adult", mk("adult", "mean", 0))
	add("fig02", "evolution", 1, "adult", mk("adult", "mean", 0))
	add("fig03", "dispersion", 1, "housing", mk("housing", "mean", 0))
	add("fig04", "evolution", 1, "housing", mk("housing", "mean", 0))
	add("fig05", "dispersion", 1, "german", mk("german", "mean", 0))
	add("fig06", "evolution", 1, "german", mk("german", "mean", 0))
	add("fig07", "dispersion", 1, "flare", mk("flare", "mean", 0))
	add("fig08", "evolution", 1, "flare", mk("flare", "mean", 0))
	// Experiment 2 (Eq. 2 max): Figures 9-16.
	add("fig09", "dispersion", 2, "adult", mk("adult", "max", 0))
	add("fig10", "evolution", 2, "adult", mk("adult", "max", 0))
	add("fig11", "dispersion", 2, "housing", mk("housing", "max", 0))
	add("fig12", "evolution", 2, "housing", mk("housing", "max", 0))
	add("fig13", "dispersion", 2, "german", mk("german", "max", 0))
	add("fig14", "evolution", 2, "german", mk("german", "max", 0))
	add("fig15", "dispersion", 2, "flare", mk("flare", "max", 0))
	add("fig16", "evolution", 2, "flare", mk("flare", "max", 0))
	// Experiment 3 (robustness on Flare): Figures 17-20.
	add("fig17", "dispersion", 3, "flare", mk("flare", "max", 0.05))
	add("fig18", "dispersion", 3, "flare", mk("flare", "max", 0.10))
	add("fig19", "evolution", 3, "flare", mk("flare", "max", 0.05))
	add("fig20", "evolution", 3, "flare", mk("flare", "max", 0.10))
	return figs
}

func writeFigure(dir string, fig figure, rep *evoprot.ExperimentReport) error {
	base := filepath.Join(dir, fmt.Sprintf("%s_%s_%s", fig.id, fig.dataset, fig.kind))
	csvFile, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	defer csvFile.Close()
	var txt string
	if fig.kind == "dispersion" {
		if err := rep.WriteDispersionCSV(csvFile); err != nil {
			return err
		}
		txt = rep.DispersionPlot(72, 20)
	} else {
		if err := rep.WriteEvolutionCSV(csvFile); err != nil {
			return err
		}
		txt = rep.EvolutionPlot(72, 20)
	}
	return os.WriteFile(base+".txt", []byte(txt), 0o644)
}

// writeTables appends the paper's in-text tables (improvements, timing,
// robustness) built from whichever reports were produced.
func writeTables(summary *strings.Builder, reports []*evoprot.ExperimentReport) {
	if len(reports) == 0 {
		return
	}
	raw := make([]*experiment.Report, len(reports))
	copy(raw, reports)
	summary.WriteString("## Improvement table (§3.1/§3.2)\n\n```\n")
	summary.WriteString(experiment.ImprovementTable(raw))
	summary.WriteString("```\n\n## Timing table (§3.2)\n\n```\n")
	summary.WriteString(experiment.TimingTable(raw))
	summary.WriteString("```\n")
	var robust []*experiment.Report
	for _, r := range raw {
		if r.Spec.Dataset == "flare" && r.Spec.Aggregator == "max" {
			robust = append(robust, r)
		}
	}
	if table, err := experiment.RobustnessTable(robust); err == nil && len(robust) > 1 {
		summary.WriteString("\n## Robustness table (§3.3)\n\n```\n")
		summary.WriteString(table)
		summary.WriteString("```\n")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
