// Command measure reports the information loss and disclosure risk of a
// masked file against its original, with the per-measure breakdown and
// both fitness aggregations.
//
//	measure -orig adult.csv -masked masked.csv \
//	        -attrs EDUCATION,MARITAL-STATUS,OCCUPATION
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"evoprot"
	"evoprot/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "measure:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("measure", flag.ContinueOnError)
	var (
		origPath   = fs.String("orig", "", "original CSV (required)")
		maskedPath = fs.String("masked", "", "masked CSV (required)")
		attrs      = fs.String("attrs", "", "comma-separated attribute names to assess (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *origPath == "" || *maskedPath == "" || *attrs == "" {
		return fmt.Errorf("-orig, -masked and -attrs are all required")
	}

	orig, err := evoprot.LoadCSV(*origPath)
	if err != nil {
		return err
	}
	// The masked file must be read against the original's schema so that
	// category indices line up even when masking removed some categories
	// from the data.
	f, err := os.Open(*maskedPath)
	if err != nil {
		return err
	}
	masked, err := dataset.ReadCSVWithSchema(f, orig.Schema())
	f.Close()
	if err != nil {
		return err
	}

	names := strings.Split(*attrs, ",")
	eval, err := evoprot.NewEvaluator(orig, names, evoprot.EvaluatorConfig{})
	if err != nil {
		return err
	}
	ev, err := eval.Evaluate(masked)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "assessing %s vs %s over %v\n\n", *maskedPath, *origPath, names)
	fmt.Fprintln(stdout, "information loss:")
	printParts(stdout, ev.ILParts)
	fmt.Fprintf(stdout, "  IL (average)        %7.2f\n\n", ev.IL)
	fmt.Fprintln(stdout, "disclosure risk:")
	printParts(stdout, ev.DRParts)
	fmt.Fprintf(stdout, "  DR (average)        %7.2f\n\n", ev.DR)
	fmt.Fprintf(stdout, "score (Eq.1 mean)     %7.2f\n", evoprot.Mean{}.Combine(ev.IL, ev.DR))
	fmt.Fprintf(stdout, "score (Eq.2 max)      %7.2f\n", evoprot.Max{}.Combine(ev.IL, ev.DR))
	return nil
}

func printParts(w io.Writer, parts map[string]float64) {
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-20s%7.2f\n", k, parts[k])
	}
}
