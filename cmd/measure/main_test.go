package main

import (
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"

	"evoprot"
)

func writePair(t *testing.T) (origPath, maskedPath string) {
	t.Helper()
	dir := t.TempDir()
	orig, err := evoprot.GenerateDataset("german", 70, 3)
	if err != nil {
		t.Fatal(err)
	}
	attrs, _ := evoprot.ProtectedAttributes("german")
	idx, _ := orig.Schema().Indices(attrs...)
	m, _ := evoprot.ParseMethod("rankswap:p=10")
	masked, err := m.Protect(orig, idx, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	origPath = filepath.Join(dir, "orig.csv")
	maskedPath = filepath.Join(dir, "masked.csv")
	if err := evoprot.SaveCSV(orig, origPath); err != nil {
		t.Fatal(err)
	}
	if err := evoprot.SaveCSV(masked, maskedPath); err != nil {
		t.Fatal(err)
	}
	return origPath, maskedPath
}

func TestRunReportsAllMeasures(t *testing.T) {
	origPath, maskedPath := writePair(t)
	var out strings.Builder
	err := run([]string{
		"-orig", origPath, "-masked", maskedPath,
		"-attrs", "EXISTACC,SAVINGS,PRESEMPLOY",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"CTBIL", "DBIL", "EBIL", "ID", "DBRL", "PRL", "RSRL",
		"IL (average)", "DR (average)", "score (Eq.1 mean)", "score (Eq.2 max)"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunSelfComparisonHasZeroIL(t *testing.T) {
	origPath, _ := writePair(t)
	var out strings.Builder
	err := run([]string{
		"-orig", origPath, "-masked", origPath,
		"-attrs", "EXISTACC,SAVINGS,PRESEMPLOY",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IL (average)           0.00") {
		t.Fatalf("identity IL not zero:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	origPath, maskedPath := writePair(t)
	cases := [][]string{
		{},
		{"-orig", origPath, "-masked", maskedPath},                         // missing attrs
		{"-orig", origPath, "-masked", maskedPath, "-attrs", "GHOST"},      // unknown attr
		{"-orig", origPath, "-masked", "absent.csv", "-attrs", "EXISTACC"}, // missing file
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
