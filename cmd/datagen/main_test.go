package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evoprot"
)

func TestRunAllDatasets(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-out", dir, "-rows", "40", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range evoprot.DatasetNames() {
		path := filepath.Join(dir, name+".csv")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("%s not written: %v", path, err)
		}
		d, err := evoprot.LoadCSV(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if d.Rows() != 40 {
			t.Errorf("%s: rows = %d", name, d.Rows())
		}
		if !strings.Contains(out.String(), name+": 40 records") {
			t.Errorf("output missing %s summary:\n%s", name, out.String())
		}
	}
}

func TestRunSingleDataset(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-out", dir, "-dataset", "flare", "-rows", "25"}, &out); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "flare.csv" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-dataset", "nosuch", "-out", t.TempDir()}, &strings.Builder{}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run([]string{"-badflag"}, &strings.Builder{}); err == nil {
		t.Error("bad flag accepted")
	}
}
