// Command datagen emits the synthetic evaluation datasets as CSV files.
//
//	datagen -out data/                    # all four datasets, paper scale
//	datagen -dataset adult -rows 500      # one dataset, custom size
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"evoprot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		name = fs.String("dataset", "all", "dataset to generate: housing|german|flare|adult|all")
		rows = fs.Int("rows", 0, "records to generate (0 = paper scale)")
		seed = fs.Uint64("seed", 42, "generation seed")
		out  = fs.String("out", ".", "output directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := evoprot.DatasetNames()
	if *name != "all" {
		names = []string{*name}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, n := range names {
		d, err := evoprot.GenerateDataset(n, *rows, *seed)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, n+".csv")
		if err := evoprot.SaveCSV(d, path); err != nil {
			return err
		}
		attrs, _ := evoprot.ProtectedAttributes(n)
		fmt.Fprintf(stdout, "%s: %d records x %d attributes -> %s (protected: %v)\n",
			n, d.Rows(), d.Cols(), path, attrs)
	}
	return nil
}
