package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMaxF(t *testing.T) {
	if maxF(1, 2) != 2 || maxF(3, 2) != 3 {
		t.Fatal("maxF broken")
	}
}

func TestRunSweepTable(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dataset", "flare", "-rows", "80",
		"-method", "pram", "-param", "theta",
		"-from", "0.5", "-to", "0.9", "-steps", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"pram:theta=0.5", "pram:theta=0.7", "pram:theta=0.9", "IL", "DR"} {
		if !strings.Contains(report, want) {
			t.Errorf("output missing %q:\n%s", want, report)
		}
	}
}

func TestRunSweepCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "sweep.csv")
	var out strings.Builder
	err := run([]string{
		"-dataset", "german", "-rows", "80",
		"-method", "micro", "-param", "k",
		"-from", "2", "-to", "6", "-steps", "3",
		"-csv", csvPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv rows = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "param,spec,il,dr,score") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunSweepErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nosuch"},
		{"-method", "nosuch", "-from", "1", "-to", "2", "-steps", "2", "-rows", "50"},
		{"-steps", "0", "-rows", "50"},
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
