// Command sweep traces one masking method's trajectory through the
// (IL, DR) plane across a parameter range — the manual exploration that
// produces the evolutionary algorithm's initial populations.
//
//	sweep -dataset adult -method pram -param theta -from 0.5 -to 0.95 -steps 10
//	sweep -dataset flare -method micro -param k -from 2 -to 10 -steps 9 -csv sweep.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"evoprot"
	"evoprot/internal/experiment"
	"evoprot/internal/score"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		name   = fs.String("dataset", "flare", "built-in dataset: housing|german|flare|adult")
		rows   = fs.Int("rows", 0, "records (0 = paper scale)")
		method = fs.String("method", "pram", "method family: micro|top|bottom|recode|rankswap|pram")
		param  = fs.String("param", "theta", "parameter to sweep (k|q|depth|p|theta)")
		from   = fs.Float64("from", 0.5, "range start")
		to     = fs.Float64("to", 0.95, "range end")
		steps  = fs.Int("steps", 10, "grid points")
		seed   = fs.Uint64("seed", 42, "seed")
		csvOut = fs.String("csv", "", "write full breakdown CSV to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	orig, err := evoprot.GenerateDataset(*name, *rows, *seed)
	if err != nil {
		return err
	}
	attrNames, err := evoprot.ProtectedAttributes(*name)
	if err != nil {
		return err
	}
	attrs, err := orig.Schema().Indices(attrNames...)
	if err != nil {
		return err
	}
	eval, err := score.NewEvaluator(orig, attrs, score.Config{})
	if err != nil {
		return err
	}
	points, err := experiment.Sweep(orig, attrs, eval, experiment.SweepSpec{
		Method: *method, Param: *param,
		From: *from, To: *to, Steps: *steps, Seed: *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%-24s %8s %8s %8s %8s\n", "method", "IL", "DR", "mean", "max")
	for _, p := range points {
		fmt.Fprintf(stdout, "%-24s %8.2f %8.2f %8.2f %8.2f\n", p.Spec, p.Eval.IL, p.Eval.DR,
			(p.Eval.IL+p.Eval.DR)/2, maxF(p.Eval.IL, p.Eval.DR))
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		if err := experiment.WriteSweepCSV(f, points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "breakdown written to %s\n", *csvOut)
	}
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
