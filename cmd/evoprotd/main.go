// Command evoprotd serves evolutionary protection optimization as an
// HTTP job service: POST a JSON job spec, watch per-generation progress
// stream over NDJSON or SSE, fetch the protected dataset when the run is
// done. Jobs checkpoint to the data directory as they evolve, so
// stopping the daemon — gracefully or by crash — loses at most one
// checkpoint interval: the next start resumes interrupted jobs where
// they left off.
//
//	evoprotd -addr :8080 -data /var/lib/evoprotd
//	evoprotd -addr 127.0.0.1:0 -data ./run -workers 4 -checkpoint-every 50
//	evoprotd -addr :8080 -store fs:/var/lib/evoprotd
//	evoprotd -addr :8080 -store mem
//
// The -store flag selects the persistence backend: "fs:<dir>" is the
// durable filesystem store (equivalent to -data <dir>, the default),
// "mem" keeps everything in process memory — nothing survives the
// process, which suits throwaway benchmarking and demo daemons.
//
// The -role flag scales the service out horizontally:
//
//	evoprotd -role coordinator -addr :8080 -data /var/lib/evoprotd
//	evoprotd -role worker -coordinator http://head:8080 -workers 4
//
// A coordinator owns admission, persistence and the public API but runs
// no jobs itself; stateless workers lease queued jobs from it over HTTP
// and persist through it. The default role, standalone, is the
// single-process service above, byte-compatible with earlier releases.
//
// Multi-tenant hardening is opt-in via -auth and friends:
//
//	evoprotd -addr :8080 -auth keys.txt -rate 5 -max-active 32 -ttl 72h
//
// -auth names a static API-key file (one "<api-key> <tenant>" per
// line) putting every /v1 route behind a key; jobs then belong to their
// submitting tenant and other tenants cannot see them. -rate/-burst
// token-bucket each tenant's submissions and -max-active caps its
// queued+running jobs (breaches answer 429 + Retry-After). Specs may
// carry "priority" 0..9; a high-priority submission against a full
// worker pool preempts the lowest-priority running job — checkpoint,
// requeue, resume — without changing its eventual result. -ttl
// garbage-collects finished jobs' persisted data after a grace period.
//
// See cmd/evoprotd/README.md for the job spec, endpoint reference,
// multi-tenant operation and cluster topology.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"evoprot/internal/cluster"
	"evoprot/internal/serve"
	"evoprot/internal/storage"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evoprotd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evoprotd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
		dataDir    = fs.String("data", "evoprotd-data", "persistence root: specs, datasets, event logs, checkpoints")
		storeSpec  = fs.String("store", "", `storage backend: "fs:<dir>" (durable, the default over -data) or "mem" (in-process, lost on exit)`)
		workers    = fs.Int("workers", min(4, runtime.GOMAXPROCS(0)), "jobs evolving concurrently (per process)")
		queueDepth = fs.Int("queue", serve.DefaultQueueDepth, "accepted jobs that may wait for a worker")
		ckptEvery  = fs.Int("checkpoint-every", serve.DefaultCheckpointEvery, "generations between periodic checkpoints (the most a crash can lose)")
		allowPaths = fs.Bool("allow-dataset-paths", false, "let job specs name server-side CSV paths")
		drain      = fs.Duration("drain", 30*time.Second, "shutdown grace for interrupting jobs and draining requests")
		role       = fs.String("role", "standalone", `process role: "standalone" (serve and run jobs), "coordinator" (serve and lease jobs out) or "worker" (lease and run jobs)`)
		coordURL   = fs.String("coordinator", "", "coordinator base URL, e.g. http://head:8080 (required with -role worker)")
		leaseTTL   = fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "how long a worker lease survives missed heartbeats before its job is re-queued (coordinator)")
		name       = fs.String("name", "", "worker name in leases and logs (worker; defaults to the hostname)")
		authFile   = fs.String("auth", "", `API-key file enabling multi-tenant auth: one "<api-key> <tenant>" per line (empty keeps the open anonymous mode)`)
		rate       = fs.Float64("rate", 0, "per-tenant submission rate limit in jobs/second; 0 disables (breaches answer 429)")
		burst      = fs.Int("burst", 0, "rate limiter burst capacity; 0 derives it from -rate")
		maxActive  = fs.Int("max-active", 0, "per-tenant cap on queued+running jobs; 0 disables (breaches answer 429)")
		ttl        = fs.Duration("ttl", 0, "garbage-collect finished jobs' data this long after they end; 0 keeps them forever")
		gcEvery    = fs.Duration("gc-every", 0, "garbage-collection sweep interval; 0 derives it from -ttl")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// -store generalizes -data: "fs:<dir>" rebinds the data dir, "mem"
	// swaps the whole persistence layer. -data keeps working unchanged.
	var backend storage.Store
	where := *dataDir
	switch {
	case *storeSpec == "":
		// serve.New builds the filesystem store over -data (the
		// coordinator builds it below, since it must hold the handle).
	case *storeSpec == "mem":
		backend = storage.NewMem()
		where = "in-memory (lost on exit)"
	case strings.HasPrefix(*storeSpec, "fs:"):
		where = strings.TrimPrefix(*storeSpec, "fs:")
		if where == "" {
			return fmt.Errorf(`-store fs: needs a directory, e.g. "fs:/var/lib/evoprotd"`)
		}
		*dataDir = where
	default:
		return fmt.Errorf(`unknown -store %q: want "fs:<dir>" or "mem"`, *storeSpec)
	}

	var keyring *serve.Keyring
	if *authFile != "" {
		k, err := serve.LoadKeyring(*authFile)
		if err != nil {
			return fmt.Errorf("-auth: %w", err)
		}
		keyring = k
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	serveCfg := serve.Config{
		DataDir:          *dataDir,
		Store:            backend,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		CheckpointEvery:  *ckptEvery,
		AllowDatasetPath: *allowPaths,
		Keyring:          keyring,
		TenantRate:       *rate,
		TenantBurst:      *burst,
		TenantMaxActive:  *maxActive,
		TTL:              *ttl,
		GCEvery:          *gcEvery,
		Logf:             logger.Printf,
	}

	switch *role {
	case "standalone":
		if *coordURL != "" {
			return fmt.Errorf("-coordinator only applies to -role worker")
		}
		srv, err := serve.New(serveCfg)
		if err != nil {
			return err
		}
		srv.Start()
		banner := fmt.Sprintf("evoprotd listening on %%s (data: %s)", where)
		return serveAndDrain(ctx, stdout, logger, *addr, banner, srv.Handler(), *drain, srv.Stop)

	case "coordinator":
		if *coordURL != "" {
			return fmt.Errorf("-coordinator only applies to -role worker")
		}
		// The coordinator hands its store to remote workers, so it must
		// hold the backend handle itself rather than let serve build one.
		if serveCfg.Store == nil {
			fsStore, err := storage.NewFS(*dataDir)
			if err != nil {
				return err
			}
			serveCfg.Store = fsStore
		}
		coord, err := cluster.NewCoordinator(cluster.Config{Serve: serveCfg, LeaseTTL: *leaseTTL})
		if err != nil {
			return err
		}
		coord.Start()
		banner := fmt.Sprintf("evoprotd coordinator listening on %%s (data: %s)", where)
		return serveAndDrain(ctx, stdout, logger, *addr, banner, coord.Handler(), *drain, coord.Stop)

	case "worker":
		if *coordURL == "" {
			return fmt.Errorf("-role worker needs -coordinator, e.g. -coordinator http://head:8080")
		}
		if *name == "" {
			host, err := os.Hostname()
			if err != nil {
				host = "worker"
			}
			*name = host
		}
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Coordinator:     *coordURL,
			Name:            *name,
			Concurrency:     *workers,
			CheckpointEvery: *ckptEvery,
			Logf:            logger.Printf,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "evoprotd worker %q serving coordinator %s (%d concurrent jobs)\n", *name, *coordURL, *workers)
		w.Run(ctx)
		fmt.Fprintln(stdout, "shutting down; leased jobs handed back resumable")
		return nil

	default:
		return fmt.Errorf(`unknown -role %q: want "standalone", "coordinator" or "worker"`, *role)
	}
}

// serveAndDrain listens on addr, announces the bound address through
// the banner (a format string with one %s for the address), serves
// handler until ctx ends, then stops the service and drains requests
// within the configured grace.
func serveAndDrain(ctx context.Context, stdout io.Writer, logger *log.Logger, addr, banner string, handler http.Handler, drain time.Duration, stop func(context.Context) error) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	fmt.Fprintf(stdout, banner+"\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Graceful exit: interrupt the workers first — Stop also unblocks any
	// event streamers of in-flight jobs, so the request drain below does
	// not hang on them. Jobs are left resumable on disk: the daemon's
	// contract is that a restart continues them, so shutdown must not
	// cancel them.
	fmt.Fprintln(stdout, "shutting down; in-flight jobs stay resumable")
	stopCtx, cancelStop := context.WithTimeout(context.Background(), drain)
	defer cancelStop()
	stopErr := stop(stopCtx)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drain)
	defer cancelDrain()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("evoprotd: http shutdown: %v", err)
	}
	return stopErr
}
