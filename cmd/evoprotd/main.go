// Command evoprotd serves evolutionary protection optimization as an
// HTTP job service: POST a JSON job spec, watch per-generation progress
// stream over NDJSON or SSE, fetch the protected dataset when the run is
// done. Jobs checkpoint to the data directory as they evolve, so
// stopping the daemon — gracefully or by crash — loses at most one
// checkpoint interval: the next start resumes interrupted jobs where
// they left off.
//
//	evoprotd -addr :8080 -data /var/lib/evoprotd
//	evoprotd -addr 127.0.0.1:0 -data ./run -workers 4 -checkpoint-every 50
//
// See cmd/evoprotd/README.md for the job spec and endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"evoprot/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evoprotd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evoprotd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
		dataDir    = fs.String("data", "evoprotd-data", "persistence root: specs, datasets, event logs, checkpoints")
		workers    = fs.Int("workers", min(4, runtime.GOMAXPROCS(0)), "jobs evolving concurrently")
		queueDepth = fs.Int("queue", serve.DefaultQueueDepth, "accepted jobs that may wait for a worker")
		ckptEvery  = fs.Int("checkpoint-every", serve.DefaultCheckpointEvery, "generations between periodic checkpoints (the most a crash can lose)")
		allowPaths = fs.Bool("allow-dataset-paths", false, "let job specs name server-side CSV paths")
		drain      = fs.Duration("drain", 30*time.Second, "shutdown grace for interrupting jobs and draining requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv, err := serve.New(serve.Config{
		DataDir:          *dataDir,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		CheckpointEvery:  *ckptEvery,
		AllowDatasetPath: *allowPaths,
		Logf:             logger.Printf,
	})
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "evoprotd listening on %s (data: %s)\n", ln.Addr(), *dataDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Graceful exit: interrupt the workers first — Stop also unblocks any
	// event streamers of in-flight jobs, so the request drain below does
	// not hang on them. Jobs are left resumable on disk: the daemon's
	// contract is that a restart continues them, so shutdown must not
	// cancel them.
	fmt.Fprintln(stdout, "shutting down; in-flight jobs stay resumable")
	stopCtx, cancelStop := context.WithTimeout(context.Background(), *drain)
	defer cancelStop()
	stopErr := srv.Stop(stopCtx)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("evoprotd: http shutdown: %v", err)
	}
	return stopErr
}
