package main

// End-to-end test of the daemon: boot on an ephemeral port, drive a job
// through the HTTP API, shut down gracefully.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"evoprot"
	"evoprot/internal/serve"
)

// lockedBuffer lets the test read stdout while the daemon goroutine
// writes it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([0-9.:\[\]]+)`)

func TestDaemonEndToEnd(t *testing.T) {
	daemonEndToEnd(t, []string{"-data", t.TempDir()})
}

// TestDaemonEndToEndMemStore: the same lifecycle with -store mem — the
// whole persistence layer swapped out from the command line.
func TestDaemonEndToEndMemStore(t *testing.T) {
	daemonEndToEnd(t, []string{"-store", "mem"})
}

func daemonEndToEnd(t *testing.T, storeArgs []string) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &lockedBuffer{}
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, append([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-checkpoint-every", "5",
		}, storeArgs...), stdout)
	}()

	// Find the ephemeral address in the banner.
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v\n%s", err, stdout.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen banner:\n%s", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %s", resp.Status)
	}

	spec := evoprot.JobSpec{Dataset: "flare", Rows: 60, Generations: 15, Islands: 2, MigrateEvery: 5, Seed: 3}
	body, _ := json.Marshal(spec)
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %s", resp.Status)
	}
	var status serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if status.State == serve.StateDone {
			break
		}
		if status.State == serve.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (error %q)", status.State, status.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, status.ID))
	if err != nil {
		t.Fatal(err)
	}
	var result serve.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if result.Best.Score <= 0 || result.DatasetCSV == "" {
		t.Fatalf("thin result: %+v", result.Best)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("no shutdown banner:\n%s", stdout.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-store", "s3:bucket"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown -store backend accepted")
	}
	if err := run(context.Background(), []string{"-store", "fs:"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-store fs: with no directory accepted")
	}
	if err := run(context.Background(), []string{"-role", "manager"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown -role accepted")
	}
	if err := run(context.Background(), []string{"-role", "worker"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-role worker without -coordinator accepted")
	}
	if err := run(context.Background(), []string{"-coordinator", "http://head:8080"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-coordinator on a standalone daemon accepted")
	}
	if err := run(context.Background(), []string{"-role", "coordinator", "-coordinator", "http://head:8080"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-coordinator on a coordinator accepted")
	}
}

// TestDaemonClusterEndToEnd boots a coordinator process and a worker
// process (as two run() invocations — the same code paths the two real
// binaries would execute), drives a job through the coordinator's API,
// and shuts both down gracefully. The coordinator runs no jobs itself:
// everything the job produced flowed through a worker lease.
func TestDaemonClusterEndToEnd(t *testing.T) {
	coordCtx, stopCoord := context.WithCancel(context.Background())
	defer stopCoord()
	coordOut := &lockedBuffer{}
	coordErr := make(chan error, 1)
	go func() {
		coordErr <- run(coordCtx, []string{
			"-role", "coordinator",
			"-addr", "127.0.0.1:0",
			"-data", t.TempDir(),
			"-checkpoint-every", "5",
		}, coordOut)
	}()

	var base string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := listenRE.FindStringSubmatch(coordOut.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-coordErr:
			t.Fatalf("coordinator exited early: %v\n%s", err, coordOut.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no coordinator banner:\n%s", coordOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct{ Role string }
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Role != "coordinator" {
		t.Fatalf("healthz role %q, want coordinator", health.Role)
	}

	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	workerOut := &lockedBuffer{}
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- run(workerCtx, []string{
			"-role", "worker",
			"-coordinator", base,
			"-name", "w1",
			"-workers", "1",
			"-checkpoint-every", "5",
		}, workerOut)
	}()

	spec := evoprot.JobSpec{Dataset: "flare", Rows: 60, Generations: 15, Islands: 2, MigrateEvery: 5, Seed: 3}
	body, _ := json.Marshal(spec)
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %s", resp.Status)
	}
	var status serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if status.State == serve.StateDone {
			break
		}
		if status.State == serve.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (error %q)", status.State, status.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, status.ID))
	if err != nil {
		t.Fatal(err)
	}
	var result serve.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if result.Best.Score <= 0 || result.DatasetCSV == "" {
		t.Fatalf("thin result: %+v", result.Best)
	}

	// Worker first, coordinator second — the order real deployments drain.
	stopWorker()
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("worker shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("worker did not shut down")
	}
	if !strings.Contains(workerOut.String(), "shutting down") {
		t.Fatalf("no worker shutdown banner:\n%s", workerOut.String())
	}
	stopCoord()
	select {
	case err := <-coordErr:
		if err != nil {
			t.Fatalf("coordinator shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}
