package main

import (
	"path/filepath"
	"strings"
	"testing"

	"evoprot"
)

func writeInput(t *testing.T) string {
	t.Helper()
	d, err := evoprot.GenerateDataset("flare", 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := evoprot.SaveCSV(d, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMasksFile(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	var buf strings.Builder
	err := run([]string{
		"-in", in, "-out", out,
		"-attrs", "CLASS,LARGSPOT,SPOTDIST",
		"-method", "pram:theta=0.5",
		"-seed", "9",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pram(theta=0.500)") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}
	masked, err := evoprot.LoadCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Rows() != 60 {
		t.Fatalf("masked rows = %d", masked.Rows())
	}
}

func TestRunValidation(t *testing.T) {
	in := writeInput(t)
	cases := [][]string{
		{},
		{"-in", in, "-out", "x.csv", "-method", "pram"},                                                // missing attrs
		{"-in", in, "-out", "x.csv", "-attrs", "GHOST", "-method", "pram"},                             // unknown attr
		{"-in", in, "-out", "x.csv", "-attrs", "CLASS", "-method", "nosuch:x=1"},                       // bad method
		{"-in", filepath.Join(t.TempDir(), "none.csv"), "-out", "x", "-attrs", "a", "-method", "pram"}, // missing input
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
