// Command protect applies one masking method to a CSV file.
//
//	protect -in adult.csv -attrs EDUCATION,MARITAL-STATUS,OCCUPATION \
//	        -method pram:theta=0.8 -out masked.csv
//
// Method specs (see protection.Parse): micro:k=5,config=0 · top:q=0.1 ·
// bottom:q=0.1 · recode:depth=2 · rankswap:p=10 · pram:theta=0.8
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"

	"evoprot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "protect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("protect", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input CSV (required)")
		out    = fs.String("out", "", "output CSV (required)")
		method = fs.String("method", "", "masking method spec (required)")
		attrs  = fs.String("attrs", "", "comma-separated attribute names to protect (required)")
		seed   = fs.Uint64("seed", 1, "seed for stochastic methods")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *method == "" || *attrs == "" {
		return fmt.Errorf("-in, -out, -method and -attrs are all required")
	}

	orig, err := evoprot.LoadCSV(*in)
	if err != nil {
		return err
	}
	names := strings.Split(*attrs, ",")
	idx, err := orig.Schema().Indices(names...)
	if err != nil {
		return err
	}
	m, err := evoprot.ParseMethod(*method)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(*seed, 0x5bd1e995))
	masked, err := m.Protect(orig, idx, rng)
	if err != nil {
		return err
	}
	if err := evoprot.SaveCSV(masked, *out); err != nil {
		return err
	}
	changed := orig.Mismatches(masked, idx)
	total := orig.Rows() * len(idx)
	fmt.Fprintf(stdout, "%s(%s): %d/%d protected cells changed (%.1f%%) -> %s\n",
		m.Name(), m.Params(), changed, total, 100*float64(changed)/float64(total), *out)
	return nil
}
