// Command loadgen replays a multi-tenant mix of job specs against a
// running evoprotd and reports service-level metrics as a JSON
// artifact — the load-test half of the service's CI gate.
//
//	loadgen -addr http://127.0.0.1:8080 -jobs 12 -concurrency 4 -out load.json
//	loadgen -addr http://head:8080 -auth keys.txt -mix paper -jobs 40
//
// The mix mirrors the paper's experimental workload: many independent
// fixed-seed optimization jobs over the same built-in dataset, differing
// in masking grid, island count and priority — exactly what a crowd of
// mutually-untrusting tenants outsourcing optimization would submit.
// With -auth, submissions rotate over the key file's tenants
// (the same "<api-key> <tenant>" format evoprotd's -auth reads);
// without it the daemon is exercised in anonymous mode.
//
// The artifact records, per run: p50/p99/max submit latency, p50/p99
// event-stream lag (submission to the first streamed event — the time a
// subscriber waits before the feed goes live), completed jobs per
// minute, and per-tenant acceptance/rejection counts. 429s are counted,
// not retried: back-pressure is a measured outcome, not an error.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// tenant is one simulated client: a label and the API key it presents
// ("" in anonymous mode).
type tenant struct {
	name string
	key  string
}

// jobOutcome is one submission's measured life.
type jobOutcome struct {
	tenant      string
	submitMS    float64
	eventLagMS  float64
	code        int
	completed   bool
	failed      bool
	streamError string
}

// quantiles summarizes a latency distribution in milliseconds.
type quantiles struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// tenantReport is one tenant's slice of the run.
type tenantReport struct {
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
}

// report is the JSON artifact.
type report struct {
	Addr          string                  `json:"addr"`
	Mix           string                  `json:"mix"`
	Jobs          int                     `json:"jobs"`
	Concurrency   int                     `json:"concurrency"`
	DurationMS    float64                 `json:"duration_ms"`
	Submitted     int                     `json:"submitted"`
	Accepted      int                     `json:"accepted"`
	Rejected429   int                     `json:"rejected_429"`
	RejectedOther int                     `json:"rejected_other"`
	Completed     int                     `json:"completed"`
	Failed        int                     `json:"failed"`
	SubmitLatency quantiles               `json:"submit_latency_ms"`
	EventLag      quantiles               `json:"event_lag_ms"`
	JobsPerMinute float64                 `json:"jobs_per_minute"`
	PerTenant     map[string]tenantReport `json:"per_tenant"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "evoprotd base URL")
		jobs    = fs.Int("jobs", 12, "total jobs to submit")
		conc    = fs.Int("concurrency", 4, "submissions in flight at once")
		mix     = fs.String("mix", "smoke", `spec mix: "smoke" (tiny, CI-sized) or "paper" (paper-scale grid-search jobs)`)
		auth    = fs.String("auth", "", `API-key file ("<api-key> <tenant>" per line); submissions rotate over its tenants`)
		out     = fs.String("out", "", "write the JSON artifact here (default stdout)")
		timeout = fs.Duration("timeout", 10*time.Minute, "overall deadline for the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 1 || *conc < 1 {
		return fmt.Errorf("-jobs and -concurrency must be positive")
	}
	specs, err := mixSpecs(*mix)
	if err != nil {
		return err
	}
	tenants, err := loadTenants(*auth)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client := &http.Client{}

	var (
		mu       sync.Mutex
		outcomes []jobOutcome
	)
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *jobs; i++ {
		spec := specs[i%len(specs)]
		ten := tenants[i%len(tenants)]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			o := runOne(ctx, client, *addr, ten, spec)
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(*addr, *mix, *jobs, *conc, elapsed, outcomes)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loadgen: %d submitted, %d completed, %.1f jobs/min, submit p99 %.1fms -> %s\n",
		rep.Submitted, rep.Completed, rep.JobsPerMinute, rep.SubmitLatency.P99, *out)
	return nil
}

// loadTenants parses the key file into the rotation; without one the
// run uses a single anonymous tenant.
func loadTenants(path string) ([]tenant, error) {
	if path == "" {
		return []tenant{{name: "anonymous"}}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tenants []tenant
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: want \"<api-key> <tenant>\" per line, got %q", path, text)
		}
		tenants = append(tenants, tenant{name: fields[1], key: fields[0]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("%s: no keys", path)
	}
	sort.Slice(tenants, func(a, b int) bool { return tenants[a].name < tenants[b].name })
	return tenants, nil
}

// mixSpecs returns the named mix's job specs as raw JSON bodies. Every
// spec is fixed-seed over the same built-in dataset — the paper's
// many-independent-grid-searches workload — varying grid, islands and
// priority so the daemon's scheduler, quota and preemption paths all see
// traffic.
func mixSpecs(name string) ([][]byte, error) {
	type spec map[string]any
	base := func(gens, islands, seed, pri int) []byte {
		s := spec{
			"dataset":     "flare",
			"rows":        80,
			"generations": gens,
			"islands":     islands,
			"seed":        seed,
			"workers":     1,
		}
		if islands > 1 {
			s["migrate_every"] = 5
		}
		if pri > 0 {
			s["priority"] = pri
		}
		buf, _ := json.Marshal(s)
		return buf
	}
	switch name {
	case "smoke":
		return [][]byte{
			base(12, 1, 7, 0),
			base(12, 2, 11, 0),
			base(16, 1, 13, 3),
			base(10, 1, 17, 0),
		}, nil
	case "paper":
		specs := make([][]byte, 0, 6)
		for i := 0; i < 6; i++ {
			pri := 0
			if i%3 == 2 {
				pri = 5
			}
			specs = append(specs, base(60+10*i, 1+i%3, 100+i, pri))
		}
		return specs, nil
	default:
		return nil, fmt.Errorf(`unknown -mix %q: want "smoke" or "paper"`, name)
	}
}

// runOne submits one spec as ten and follows it to a terminal state,
// measuring submit latency and the lag before its event stream delivers.
func runOne(ctx context.Context, client *http.Client, addr string, ten tenant, spec []byte) jobOutcome {
	o := jobOutcome{tenant: ten.name, eventLagMS: math.NaN()}
	submitStart := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/jobs", bytes.NewReader(spec))
	if err != nil {
		o.code = -1
		return o
	}
	req.Header.Set("Content-Type", "application/json")
	if ten.key != "" {
		req.Header.Set("X-API-Key", ten.key)
	}
	resp, err := client.Do(req)
	if err != nil {
		o.code = -1
		return o
	}
	o.submitMS = float64(time.Since(submitStart)) / float64(time.Millisecond)
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	o.code = resp.StatusCode
	if resp.StatusCode != http.StatusCreated {
		return o
	}
	var status struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &status); err != nil || status.ID == "" {
		o.streamError = "unparseable submit response"
		return o
	}

	// Event-stream lag: how long after the accepted submission the job's
	// feed delivers its first event to a subscriber.
	firstEvent := make(chan time.Time, 1)
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	go streamFirstEvent(streamCtx, client, addr, ten, status.ID, firstEvent)

	state, err := waitTerminal(ctx, client, addr, ten, status.ID)
	if err != nil {
		o.streamError = err.Error()
		return o
	}
	o.completed = state == "done"
	o.failed = !o.completed
	select {
	case at := <-firstEvent:
		o.eventLagMS = float64(at.Sub(submitStart)) / float64(time.Millisecond)
	case <-time.After(2 * time.Second):
		// Feed never went live (e.g. the job failed before any event).
	}
	return o
}

// streamFirstEvent tails the job's NDJSON feed and reports the arrival
// time of its first event.
func streamFirstEvent(ctx context.Context, client *http.Client, addr string, ten tenant, id string, first chan<- time.Time) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return
	}
	if ten.key != "" {
		req.Header.Set("X-API-Key", ten.key)
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		return
	}
	first <- time.Now()
}

// waitTerminal polls the job's status until done/cancelled/failed.
func waitTerminal(ctx context.Context, client *http.Client, addr string, ten tenant, id string) (string, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/jobs/"+id, nil)
		if err != nil {
			return "", err
		}
		if ten.key != "" {
			req.Header.Set("X-API-Key", ten.key)
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		var status struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch status.State {
		case "done", "cancelled", "failed":
			return status.State, nil
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// summarize folds the outcomes into the artifact.
func summarize(addr, mix string, jobs, conc int, elapsed time.Duration, outcomes []jobOutcome) report {
	rep := report{
		Addr:        addr,
		Mix:         mix,
		Jobs:        jobs,
		Concurrency: conc,
		DurationMS:  float64(elapsed) / float64(time.Millisecond),
		PerTenant:   make(map[string]tenantReport),
	}
	var submits, lags []float64
	for _, o := range outcomes {
		t := rep.PerTenant[o.tenant]
		t.Submitted++
		rep.Submitted++
		switch {
		case o.code == http.StatusCreated:
			t.Accepted++
			rep.Accepted++
			submits = append(submits, o.submitMS)
		case o.code == http.StatusTooManyRequests:
			t.Rejected++
			rep.Rejected429++
		default:
			t.Rejected++
			rep.RejectedOther++
		}
		if o.completed {
			t.Completed++
			rep.Completed++
		}
		if o.failed {
			rep.Failed++
		}
		if !math.IsNaN(o.eventLagMS) {
			lags = append(lags, o.eventLagMS)
		}
		rep.PerTenant[o.tenant] = t
	}
	rep.SubmitLatency = summarizeQuantiles(submits)
	rep.EventLag = summarizeQuantiles(lags)
	if elapsed > 0 {
		rep.JobsPerMinute = float64(rep.Completed) / elapsed.Minutes()
	}
	return rep
}

// summarizeQuantiles computes p50/p99/max over samples (zeros when
// empty — an empty run gates as a regression, not a crash).
func summarizeQuantiles(samples []float64) quantiles {
	if len(samples) == 0 {
		return quantiles{}
	}
	sort.Float64s(samples)
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return quantiles{P50: pick(0.50), P99: pick(0.99), Max: samples[len(samples)-1]}
}
