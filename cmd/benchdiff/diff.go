package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// options parameterizes a diff run.
type options struct {
	// Threshold is the failing regression size in percent.
	Threshold float64
	// Metrics is the comma-separated list of benchmark units to compare
	// (JSON mode: flattened dotted keys, e.g. "submit_latency_ms.p99").
	Metrics string
	// MinNs suppresses ns/op comparisons whose baseline is below this
	// value: single-iteration timings of fast benchmarks are noise.
	MinNs float64
	// JSON switches to generic JSON-metrics mode: OLD and NEW are JSON
	// documents, flattened to dotted keys, compared on Metrics.
	JSON bool
	// Invert lists metrics where higher is better (comma-separated):
	// for those a decrease past the threshold is the regression.
	Invert string
}

// benchSet maps "package/BenchmarkName" to that benchmark's metrics by
// unit (ns/op, B/op, allocs/op and any custom b.ReportMetric units).
type benchSet map[string]map[string]float64

// testEvent is the subset of the `go test -json` event stream benchdiff
// reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// procSuffix matches the -GOMAXPROCS suffix of a benchmark name.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchFile reads a benchmark artifact in `go test -json` or plain
// text form and collects every benchmark result line.
func parseBenchFile(path string) (benchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set := benchSet{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		pkg, out, test := "", line, ""
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue // tolerate foreign lines in the stream
			}
			if ev.Action != "output" {
				continue
			}
			pkg, out, test = ev.Package, ev.Output, ev.Test
		}
		name, metrics, ok := parseBenchLine(out)
		if !ok && strings.HasPrefix(test, "Benchmark") {
			// test2json sometimes splits a benchmark result across two
			// output events — the name alone, then the numbers. The
			// event's Test field still names the benchmark, so re-parse
			// the numbers-only line with it prepended.
			name, metrics, ok = parseBenchLine(test + " " + out)
		}
		if !ok {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "/" + name
		}
		set[key] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// parseBenchLine parses one "BenchmarkFoo-8   123   456 ns/op  7 B/op ..."
// result line into the benchmark's normalized name and its metrics.
func parseBenchLine(out string) (string, map[string]float64, bool) {
	fields := strings.Fields(strings.TrimSpace(out))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // not an iteration count: some other output
	}
	name := procSuffix.ReplaceAllString(fields[0], "")
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

// parseJSONMetricsFile reads a generic JSON document (e.g. a loadgen
// artifact) and flattens its numeric leaves to dotted keys under the
// single pseudo-benchmark "metrics": {"submit_latency_ms":{"p99":42}}
// becomes "submit_latency_ms.p99" = 42. Array elements flatten under
// their index. Non-numeric leaves are skipped.
func parseJSONMetricsFile(path string) (benchSet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	flat := map[string]float64{}
	flattenJSON("", doc, flat)
	if len(flat) == 0 {
		return benchSet{}, nil
	}
	return benchSet{"metrics": flat}, nil
}

// flattenJSON walks doc depth-first, recording numeric leaves in flat
// under prefix-dotted keys.
func flattenJSON(prefix string, doc any, flat map[string]float64) {
	join := func(k string) string {
		if prefix == "" {
			return k
		}
		return prefix + "." + k
	}
	switch v := doc.(type) {
	case map[string]any:
		for k, child := range v {
			flattenJSON(join(k), child, flat)
		}
	case []any:
		for i, child := range v {
			flattenJSON(join(strconv.Itoa(i)), child, flat)
		}
	case float64:
		flat[prefix] = v
	}
}

// delta is one (benchmark, metric) comparison.
type delta struct {
	key, metric string
	oldV, newV  float64
	pct         float64
}

// run diffs two artifacts and renders the report, returning the number of
// regressions past the threshold.
func run(oldPath, newPath string, opts options) (report string, regressions int, err error) {
	parse := parseBenchFile
	what := "benchmark results"
	if opts.JSON {
		parse = parseJSONMetricsFile
		what = "numeric JSON metrics"
	}
	oldSet, err := parse(oldPath)
	if err != nil {
		return "", 0, err
	}
	newSet, err := parse(newPath)
	if err != nil {
		return "", 0, err
	}
	if len(oldSet) == 0 {
		return "", 0, fmt.Errorf("%s contains no %s", oldPath, what)
	}
	if len(newSet) == 0 {
		return "", 0, fmt.Errorf("%s contains no %s", newPath, what)
	}
	metrics := strings.Split(opts.Metrics, ",")
	inverted := map[string]bool{}
	for _, m := range strings.Split(opts.Invert, ",") {
		if m = strings.TrimSpace(m); m != "" {
			inverted[m] = true
		}
	}
	var regressed, improved []delta
	onlyOld, onlyNew := 0, 0
	for key := range oldSet {
		if _, ok := newSet[key]; !ok {
			onlyOld++
		}
	}
	keys := make([]string, 0, len(newSet))
	for key := range newSet {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		olds, ok := oldSet[key]
		if !ok {
			onlyNew++
			continue
		}
		news := newSet[key]
		for _, metric := range metrics {
			metric = strings.TrimSpace(metric)
			oldV, okOld := olds[metric]
			newV, okNew := news[metric]
			if !okOld || !okNew || oldV < 0 {
				continue
			}
			if metric == "ns/op" && oldV < opts.MinNs {
				continue
			}
			if oldV == 0 {
				// A zero baseline growing is an unbounded change — a
				// regression for lower-is-better metrics (an allocation-free
				// path starting to allocate), an improvement for inverted
				// ones (throughput appearing from nothing).
				if newV > 0 {
					d := delta{key: key, metric: metric, oldV: oldV, newV: newV, pct: math.Inf(1)}
					if inverted[metric] {
						improved = append(improved, d)
					} else {
						regressed = append(regressed, d)
					}
				}
				continue
			}
			pct := (newV - oldV) / oldV * 100
			d := delta{key: key, metric: metric, oldV: oldV, newV: newV, pct: pct}
			bad, good := pct > opts.Threshold, pct < -opts.Threshold
			if inverted[metric] {
				bad, good = good, bad
			}
			switch {
			case bad:
				regressed = append(regressed, d)
			case good:
				improved = append(improved, d)
			}
		}
	}

	var b strings.Builder
	if len(regressed) > 0 {
		fmt.Fprintf(&b, "REGRESSIONS (>%g%%):\n", opts.Threshold)
		for _, d := range regressed {
			fmt.Fprintf(&b, "  %s %s: %g -> %g (%+.1f%%)\n", d.key, d.metric, d.oldV, d.newV, d.pct)
		}
	}
	if len(improved) > 0 {
		fmt.Fprintf(&b, "improvements (>%g%%):\n", opts.Threshold)
		for _, d := range improved {
			fmt.Fprintf(&b, "  %s %s: %g -> %g (%+.1f%%)\n", d.key, d.metric, d.oldV, d.newV, d.pct)
		}
	}
	fmt.Fprintf(&b, "compared %d benchmarks (%d regressed, %d improved, %d only in old, %d only in new)\n",
		len(newSet)-onlyNew, len(regressed), len(improved), onlyOld, onlyNew)
	return b.String(), len(regressed), nil
}
