// Command benchdiff compares two benchmark artifacts and exits non-zero
// when any benchmark regressed past a threshold — the regression gate for
// the BENCH_<sha>.json files CI publishes on every push to main.
//
// Usage:
//
//	benchdiff [flags] OLD NEW
//
// OLD and NEW are benchmark outputs in either `go test -json -bench` form
// (one JSON event per line, as CI produces) or plain `go test -bench`
// text. Benchmarks are matched by package and name (with the -GOMAXPROCS
// suffix stripped, so artifacts from differently-sized runners still
// line up); benchmarks present in only one artifact are reported but never
// fail the diff.
//
// By default the tool compares ns/op and allocs/op and fails on a >15%
// increase of either. Single-iteration timings of very fast benchmarks are
// dominated by scheduling noise, so ns/op comparisons are skipped when the
// baseline is below -min-ns (default 100µs); allocs/op is deterministic
// and always compared.
//
// With -json, OLD and NEW are instead generic JSON metric documents —
// the LOAD_<sha>.json artifacts the loadtest CI job publishes, or any
// other JSON with numeric leaves. Documents are flattened to dotted
// keys ({"submit_latency_ms":{"p99":42}} -> submit_latency_ms.p99) and
// -metrics selects which keys gate. Metrics listed in -invert are
// higher-is-better (throughput): for those a *decrease* past the
// threshold is the regression.
//
//	benchdiff -json -metrics submit_latency_ms.p99 -threshold 25 OLD.json NEW.json
//	benchdiff -json -metrics jobs_per_minute -invert jobs_per_minute OLD.json NEW.json
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var opts options
	flag.Float64Var(&opts.Threshold, "threshold", 15, "regression threshold in percent")
	flag.StringVar(&opts.Metrics, "metrics", "ns/op,allocs/op", "comma-separated metrics to compare")
	flag.Float64Var(&opts.MinNs, "min-ns", 100_000, "skip ns/op comparison when the baseline is below this many ns/op")
	flag.BoolVar(&opts.JSON, "json", false, "compare generic JSON metric documents (flattened to dotted keys) instead of go test -bench output")
	flag.StringVar(&opts.Invert, "invert", "", "comma-separated higher-is-better metrics: a decrease past the threshold regresses")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD NEW\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	report, regressions, err := run(flag.Arg(0), flag.Arg(1), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(report)
	if regressions > 0 {
		os.Exit(1)
	}
}
