package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `{"Action":"start","Package":"evoprot/internal/risk"}
{"Action":"output","Package":"evoprot/internal/risk","Output":"goos: linux\n"}
{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkRankIntervalLinkage-8 \t   43468\t     200000 ns/op\t   55928 B/op\t     564 allocs/op\n"}
{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkFast-8 \t   999\t     500 ns/op\t   16 B/op\t     2 allocs/op\n"}
{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkGone-8 \t   10\t     300000 ns/op\n"}
{"Action":"output","Package":"evoprot/internal/risk","Output":"PASS\n"}
`

func defaultOpts() options {
	return options{Threshold: 15, Metrics: "ns/op,allocs/op", MinNs: 100_000}
}

func TestParseBenchFileJSON(t *testing.T) {
	path := writeArtifact(t, "old.json", oldJSON)
	set, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := set["evoprot/internal/risk/BenchmarkRankIntervalLinkage"]
	if !ok {
		t.Fatalf("benchmark not found; keys: %v", keysOf(set))
	}
	if m["ns/op"] != 200000 || m["allocs/op"] != 564 || m["B/op"] != 55928 {
		t.Fatalf("metrics = %v", m)
	}
	if len(set) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(set))
	}
}

func TestParseBenchFileSplitResultLine(t *testing.T) {
	// test2json sometimes emits the benchmark name and its numbers as two
	// separate output events; the numbers-only event still carries the
	// Test field.
	path := writeArtifact(t, "split.json", `{"Action":"output","Package":"p","Test":"BenchmarkSplit","Output":"BenchmarkSplit\n"}
{"Action":"output","Package":"p","Test":"BenchmarkSplit","Output":"       1\t      9715 ns/op\t     512 B/op\t       6 allocs/op\n"}
`)
	set, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := set["p/BenchmarkSplit"]
	if !ok || m["ns/op"] != 9715 || m["allocs/op"] != 6 {
		t.Fatalf("split result not reassembled: %v", set)
	}
}

func TestParseBenchFilePlainText(t *testing.T) {
	path := writeArtifact(t, "plain.txt", `
goos: linux
BenchmarkFoo-16         100         12345 ns/op               3.5 things/op
PASS
`)
	set, err := parseBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := set["BenchmarkFoo"]
	if !ok || m["ns/op"] != 12345 || m["things/op"] != 3.5 {
		t.Fatalf("set = %v", set)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldJSON)
	newPath := writeArtifact(t, "new.json", `{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkRankIntervalLinkage-8 \t   100\t     300000 ns/op\t   55928 B/op\t     564 allocs/op\n"}
{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkFast-8 \t   999\t     900000 ns/op\t   16 B/op\t     2 allocs/op\n"}
{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkNew-8 \t   10\t     100 ns/op\n"}
`)
	report, regressions, err := run(oldPath, newPath, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	// +50% ns/op on the slow benchmark fails; BenchmarkFast's baseline sits
	// below min-ns so its (huge) timing regression is ignored; added and
	// removed benchmarks never fail.
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\nreport:\n%s", regressions, report)
	}
	if !strings.Contains(report, "BenchmarkRankIntervalLinkage ns/op") {
		t.Fatalf("report misses the regression:\n%s", report)
	}
	if !strings.Contains(report, "1 only in old, 1 only in new") {
		t.Fatalf("report misses added/removed counts:\n%s", report)
	}
}

func TestDiffFlagsAllocRegressionEvenWhenFast(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldJSON)
	newPath := writeArtifact(t, "new.json", `{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkFast-8 \t   999\t     500 ns/op\t   16 B/op\t     40 allocs/op\n"}
`)
	_, regressions, err := run(oldPath, newPath, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("allocs/op regression on a fast benchmark not flagged: %d", regressions)
	}
}

func TestDiffFlagsZeroBaselineGrowth(t *testing.T) {
	// An allocation-free benchmark starting to allocate is an unbounded
	// regression, not a skipped comparison.
	oldPath := writeArtifact(t, "old.json", `{"Action":"output","Package":"p","Output":"BenchmarkZero-8 \t   100\t     500000 ns/op\t   0 B/op\t     0 allocs/op\n"}
`)
	newPath := writeArtifact(t, "new.json", `{"Action":"output","Package":"p","Output":"BenchmarkZero-8 \t   100\t     500000 ns/op\t   512 B/op\t     50 allocs/op\n"}
`)
	report, regressions, err := run(oldPath, newPath, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 || !strings.Contains(report, "BenchmarkZero allocs/op: 0 -> 50") {
		t.Fatalf("0 -> 50 allocs/op not flagged (regressions=%d):\n%s", regressions, report)
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldJSON)
	newPath := writeArtifact(t, "new.json", `{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkRankIntervalLinkage-8 \t   100\t     210000 ns/op\t   55928 B/op\t     600 allocs/op\n"}
`)
	report, regressions, err := run(oldPath, newPath, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("+5%%/+6%% flagged as regression:\n%s", report)
	}
}

func TestDiffImprovementReported(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldJSON)
	newPath := writeArtifact(t, "new.json", `{"Action":"output","Package":"evoprot/internal/risk","Output":"BenchmarkRankIntervalLinkage-8 \t   100\t     100000 ns/op\t   100 B/op\t     3 allocs/op\n"}
`)
	report, regressions, err := run(oldPath, newPath, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 || !strings.Contains(report, "improvements") {
		t.Fatalf("improvement not reported (regressions=%d):\n%s", regressions, report)
	}
}

func TestDiffEmptyArtifactErrors(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldJSON)
	empty := writeArtifact(t, "empty.json", "{\"Action\":\"start\"}\n")
	if _, _, err := run(oldPath, empty, defaultOpts()); err == nil {
		t.Fatal("empty NEW artifact accepted")
	}
	if _, _, err := run(empty, oldPath, defaultOpts()); err == nil {
		t.Fatal("empty OLD artifact accepted")
	}
}

func keysOf(set benchSet) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

const oldLoadJSON = `{
  "jobs_per_minute": 600,
  "submit_latency_ms": {"p50": 10, "p99": 40, "max": 55.5},
  "event_lag_ms": {"p50": 100, "p99": 300},
  "per_tenant": {"alpha": {"completed": 4}},
  "mix": "smoke"
}`

func jsonOpts() options {
	return options{Threshold: 25, Metrics: "submit_latency_ms.p99,jobs_per_minute", Invert: "jobs_per_minute", JSON: true}
}

func TestJSONMetricsFlatten(t *testing.T) {
	path := writeArtifact(t, "load.json", oldLoadJSON)
	set, err := parseJSONMetricsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flat, ok := set["metrics"]
	if !ok {
		t.Fatalf("no metrics pseudo-benchmark; keys: %v", keysOf(set))
	}
	want := map[string]float64{
		"jobs_per_minute":            600,
		"submit_latency_ms.p50":      10,
		"submit_latency_ms.p99":      40,
		"submit_latency_ms.max":      55.5,
		"event_lag_ms.p50":           100,
		"event_lag_ms.p99":           300,
		"per_tenant.alpha.completed": 4,
	}
	for k, v := range want {
		if flat[k] != v {
			t.Fatalf("flat[%q] = %g, want %g (all: %v)", k, flat[k], v, flat)
		}
	}
	if _, ok := flat["mix"]; ok {
		t.Fatal("non-numeric leaf flattened")
	}
}

func TestJSONDiffLatencyRegression(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldLoadJSON)
	newPath := writeArtifact(t, "new.json", `{"jobs_per_minute": 610, "submit_latency_ms": {"p50": 11, "p99": 60}}`)
	report, regressions, err := run(oldPath, newPath, jsonOpts())
	if err != nil {
		t.Fatal(err)
	}
	// p99 40 -> 60 is +50%, past the 25% gate; throughput moved within it.
	if regressions != 1 || !strings.Contains(report, "submit_latency_ms.p99: 40 -> 60") {
		t.Fatalf("latency regression not flagged (regressions=%d):\n%s", regressions, report)
	}
}

func TestJSONDiffInvertedThroughput(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldLoadJSON)

	// Throughput collapsing is the regression for an inverted metric...
	dropPath := writeArtifact(t, "drop.json", `{"jobs_per_minute": 300, "submit_latency_ms": {"p99": 40}}`)
	report, regressions, err := run(oldPath, dropPath, jsonOpts())
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 || !strings.Contains(report, "jobs_per_minute: 600 -> 300") {
		t.Fatalf("throughput drop not flagged (regressions=%d):\n%s", regressions, report)
	}

	// ...and throughput growing is an improvement, never a failure.
	growPath := writeArtifact(t, "grow.json", `{"jobs_per_minute": 1200, "submit_latency_ms": {"p99": 40}}`)
	report, regressions, err = run(oldPath, growPath, jsonOpts())
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 || !strings.Contains(report, "improvements") {
		t.Fatalf("throughput growth misreported (regressions=%d):\n%s", regressions, report)
	}
}

func TestJSONDiffEmptyDocumentErrors(t *testing.T) {
	oldPath := writeArtifact(t, "old.json", oldLoadJSON)
	empty := writeArtifact(t, "empty.json", `{"mix": "smoke"}`)
	if _, _, err := run(oldPath, empty, jsonOpts()); err == nil {
		t.Fatal("JSON document without numeric leaves accepted")
	}
}
