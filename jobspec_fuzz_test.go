package evoprot

// Fuzzing the JobSpec wire format — the admission boundary of evoprotd.
// Arbitrary JSON must never panic spec validation, and the two halves of
// the contract must agree: a spec Validate accepts always bridges to
// options (errors never round-trip into an accepted config), and a spec
// Validate rejects must never bridge.

import (
	"encoding/json"
	"testing"
)

func FuzzJobSpecJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"dataset":"flare"}`,
		`{"dataset":"flare","islands":3,"niches":"explore-exploit"}`,
		`{"dataset":"flare","per_island":[{},{"selection":"rank","aggregator":"mean"}]}`,
		`{"dataset":"flare","per_island":[{"selection":"bogus"}]}`,
		`{"dataset":"flare","islands":2,"adaptive":{}}`,
		`{"dataset":"flare","islands":2,"adaptive":{"min_every":50,"max_every":60}}`,
		`{"dataset":"flare","adaptive":{"low_divergence":0.9,"high_divergence":0.1}}`,
		`{"dataset":"flare","niches":"explore-exploit","per_island":[{}]}`,
		`{"dataset":"flare","dataset_csv":"A\n1"}`,
		`{"dataset_csv":"A,B\n1,2","attributes":["A"]}`,
		`{"dataset":"flare","generations":-1}`,
		`{"dataset":"flare","topology":"star"}`,
		`{"dataset":"flare","selection":"rank","aggregator":"weighted:0.25"}`,
		`{"per_island":[{"mutation_rate":-1}],"dataset":"flare"}`,
		`[1,2,3]`,
		`"just a string"`,
		"{\"dataset\":\"flare\",\"per_island\":[{\"crossover_points\":-2}]}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var spec JobSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return
		}
		verr := spec.Validate()
		opts, oerr := spec.Options()
		if verr == nil && oerr != nil {
			t.Fatalf("Validate accepted but Options rejected: %v (spec %+v)", oerr, spec)
		}
		if verr != nil && oerr == nil {
			t.Fatalf("Validate rejected (%v) but Options bridged anyway (spec %+v)", verr, spec)
		}
		if verr == nil && opts == nil {
			t.Fatalf("accepted spec bridged to no options (spec %+v)", spec)
		}
	})
}
