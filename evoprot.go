package evoprot

import (
	"context"
	"fmt"
	"io"
	"os"

	"evoprot/internal/core"
	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/experiment"
	"evoprot/internal/infoloss"
	"evoprot/internal/pareto"
	"evoprot/internal/protection"
	"evoprot/internal/risk"
	"evoprot/internal/score"
)

// Re-exported core types. The facade aliases the implementation types, so
// values flow freely between the high-level helpers here and the
// lower-level constructors.
type (
	// Dataset is a table of categorical microdata.
	Dataset = dataset.Dataset
	// Schema describes a dataset's attributes and their domains.
	Schema = dataset.Schema
	// Attribute is one categorical variable with a finite domain.
	Attribute = dataset.Attribute
	// Method is a parameterized masking method.
	Method = protection.Method
	// Composition is the per-method variant count of an initial population.
	Composition = protection.Composition
	// ILMeasure is a single information-loss measure.
	ILMeasure = infoloss.Measure
	// DRMeasure is a single disclosure-risk measure.
	DRMeasure = risk.Measure
	// Aggregator folds (IL, DR) into one score; see Mean and Max.
	Aggregator = score.Aggregator
	// Mean is the paper's Eq. 1 aggregation: (IL+DR)/2.
	Mean = score.Mean
	// Max is the paper's Eq. 2 aggregation: max(IL, DR).
	Max = score.Max
	// Evaluator computes fitness evaluations against a fixed original file.
	Evaluator = score.Evaluator
	// EvaluatorConfig parameterizes an Evaluator.
	EvaluatorConfig = score.Config
	// Evaluation is a full fitness breakdown (IL, DR, Score, per-measure).
	Evaluation = score.Evaluation
	// DeltaState carries the incremental-evaluation state of one masked
	// dataset; see Evaluator.Prepare and Evaluator.EvaluateDelta.
	DeltaState = score.DeltaState
	// CellChange records one cell edit, the unit of delta evaluation.
	CellChange = dataset.CellChange
	// Pair is an (IL, DR) point.
	Pair = score.Pair
	// Individual is one member of the evolutionary population.
	Individual = core.Individual
	// Engine runs the evolutionary algorithm.
	Engine = core.Engine
	// EngineConfig parameterizes the Engine.
	EngineConfig = core.Config
	// GenStats is one generation's history record.
	GenStats = core.GenStats
	// FrontStats is a Pareto-mode generation's non-dominated front summary
	// (GenStats.Front; nil on scalarized runs).
	FrontStats = core.FrontStats
	// Result is the outcome of an evolutionary run.
	Result = core.Result
	// ExperimentSpec identifies one of the paper's experiment runs.
	ExperimentSpec = experiment.Spec
	// ExperimentReport is the full outcome of an experiment run.
	ExperimentReport = experiment.Report
)

// AllCrossover is the EngineConfig.MutationRate sentinel requesting an
// explicit rate of 0.0 (every generation performs crossover); the zero
// value selects the paper's default of 0.5.
const AllCrossover = core.AllCrossover

// DefaultGenerations is the evolution budget selected when no explicit
// generation count is configured — the paper's 400.
const DefaultGenerations = core.DefaultGenerations

// DatasetNames returns the built-in synthetic dataset names:
// housing, german, flare, adult.
func DatasetNames() []string { return datagen.Names() }

// GenerateDataset synthesizes one of the paper's evaluation datasets
// (rows 0 selects the paper's record count).
func GenerateDataset(name string, rows int, seed uint64) (*Dataset, error) {
	return datagen.ByName(name, rows, seed)
}

// ProtectedAttributes returns the attribute names the paper protects for
// the named dataset.
func ProtectedAttributes(name string) ([]string, error) {
	return datagen.ProtectedAttrs(name)
}

// LoadCSV reads categorical microdata from a CSV file, inferring the
// schema from the data (see dataset.ReadCSV for the rules).
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("evoprot: %w", err)
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

// ReadCSV reads categorical microdata from a reader, inferring the schema.
func ReadCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// SaveCSV writes a dataset to a CSV file.
func SaveCSV(d *Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("evoprot: %w", err)
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseMethod builds a masking method from a spec string such as
// "pram:theta=0.8" or "micro:k=5"; see protection.Parse for the grammar.
func ParseMethod(spec string) (Method, error) { return protection.Parse(spec) }

// AggregatorByName resolves every built-in fitness aggregation: "mean"
// (Eq. 1), "max" (Eq. 2), "euclidean", and "weighted:<w>".
func AggregatorByName(name string) (Aggregator, error) {
	return score.ExtendedAggregatorByName(name)
}

// DefaultAggregatorName names the aggregation selected when none is
// configured: "max" (Eq. 2), the aggregation the paper concludes works
// better for categorical data.
const DefaultAggregatorName = score.DefaultAggregatorName

// PaperComposition returns the paper's §3 initial-population composition
// for the named dataset.
func PaperComposition(name string) (Composition, error) {
	return protection.PaperComposition(name)
}

// NewEvaluator builds a fitness evaluator for the original dataset over
// the named protected attributes.
func NewEvaluator(orig *Dataset, attrNames []string, cfg EvaluatorConfig) (*Evaluator, error) {
	attrs, err := orig.Schema().Indices(attrNames...)
	if err != nil {
		return nil, err
	}
	return score.NewEvaluator(orig, attrs, cfg)
}

// NewEngine builds an evolutionary engine from an evaluator and an initial
// population of protected datasets.
func NewEngine(eval *Evaluator, initial []*Individual, cfg EngineConfig) (*Engine, error) {
	return core.NewEngine(eval, initial, cfg)
}

// NewIndividual wraps a protected dataset for the engine.
func NewIndividual(data *Dataset, origin string) *Individual {
	return core.NewIndividual(data, origin)
}

// ResumeEngine rebuilds an engine from a snapshot written by
// Engine.Snapshot; see core.Resume for the contract. Together with
// Snapshot this makes long optimizations checkpointable: a resumed run
// continues the identical stochastic trajectory.
func ResumeEngine(eval *Evaluator, r io.Reader, cfg EngineConfig) (*Engine, error) {
	return core.Resume(eval, r, cfg)
}

// RunExperiment executes one of the paper's experiments; see
// ExperimentSpec for the knobs.
func RunExperiment(spec ExperimentSpec) (*ExperimentReport, error) {
	return experiment.Run(spec)
}

// ParetoFront returns the non-dominated (IL, DR) pairs of a population,
// sorted by increasing information loss. Pairs with NaN or ±Inf
// components — failed or degenerate evaluations — are dropped; see
// the pareto package contract.
func ParetoFront(pairs []Pair) []Pair { return pareto.Front(pairs) }

// Hypervolume returns the trade-off-plane area dominated by the pairs
// within [0, ref.IL] x [0, ref.DR]; larger is better. A reference point
// with a non-finite, zero or negative component bounds no box and yields
// an error wrapping pareto.ErrReference.
func Hypervolume(pairs []Pair, ref Pair) (float64, error) { return pareto.Hypervolume(pairs, ref) }

// DefaultParetoRef is the hypervolume reference point Pareto-mode runs
// use when WithParetoRef is not given (see core.DefaultParetoRef).
var DefaultParetoRef = core.DefaultParetoRef

// OptimizeOptions parameterizes Optimize, the pre-context entry point.
//
// Deprecated: use the functional options of Run / NewRunner instead.
type OptimizeOptions struct {
	// Dataset names a paper masking grid ("housing", "german", "flare",
	// "adult") used to seed the population when Seeds is nil. Required in
	// that case.
	Dataset string
	// Seeds optionally supplies a ready-made initial population of masked
	// datasets; overrides Dataset-based seeding.
	Seeds []*Dataset
	// Aggregator is "mean" (Eq. 1) or "max" (Eq. 2, default).
	Aggregator string
	// Generations is the evolution budget (default 400).
	Generations int
	// Seed drives all randomness.
	Seed uint64
	// Workers parallelizes initial-population evaluation (0 = sequential).
	Workers int
	// NoImprovementWindow stops early after that many stagnant
	// generations (0 = disabled).
	NoImprovementWindow int
}

// Optimize runs the full pipeline on an original dataset: build (or
// accept) an initial population of protections over the named attributes,
// evolve it, and return the result with the best protection first.
//
// Deprecated: Optimize cannot express cancellation, deadlines, streamed
// progress or multi-island runs. It is kept as a thin wrapper over Run —
// same trajectory for the same seed — for compatibility; new code should
// call Run (or NewRunner) with context and functional options.
func Optimize(orig *Dataset, attrNames []string, opts OptimizeOptions) (*Result, error) {
	options := []Option{WithSeed(opts.Seed), WithWorkers(opts.Workers)}
	if opts.Seeds != nil {
		options = append(options, WithSeeds(opts.Seeds...))
	}
	if opts.Dataset != "" {
		options = append(options, WithGrid(opts.Dataset))
	}
	if opts.Aggregator != "" {
		options = append(options, WithAggregator(opts.Aggregator))
	}
	if opts.Generations != 0 {
		options = append(options, WithGenerations(opts.Generations))
	}
	if opts.NoImprovementWindow != 0 {
		options = append(options, WithEarlyStop(opts.NoImprovementWindow))
	}
	res, err := Run(context.Background(), orig, attrNames, options...)
	if err != nil {
		return nil, err
	}
	return res.Islands[0], nil
}
