package evoprot

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateDatasetAndProtectedAttributes(t *testing.T) {
	for _, name := range DatasetNames() {
		d, err := GenerateDataset(name, 60, 7)
		if err != nil {
			t.Fatal(err)
		}
		if d.Rows() != 60 {
			t.Fatalf("%s: rows = %d", name, d.Rows())
		}
		attrs, err := ProtectedAttributes(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Schema().Indices(attrs...); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := GenerateDataset("bogus", 0, 1); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	d, _ := GenerateDataset("flare", 40, 3)
	if err := SaveCSV(d, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 40 || back.Cols() != d.Cols() {
		t.Fatalf("round trip shape = %dx%d", back.Rows(), back.Cols())
	}
	// Inferred schema sorts categories, so compare record contents.
	a, b := d.Records(), back.Records()
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("record (%d,%d): %q != %q", r, c, a[r][c], b[r][c])
			}
		}
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "absent.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadCSVFacade(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("a,b\nx,1\ny,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 2 {
		t.Fatalf("rows = %d", d.Rows())
	}
}

func TestParseMethodFacade(t *testing.T) {
	m, err := ParseMethod("rankswap:p=6")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "rankswapping" {
		t.Fatalf("name = %q", m.Name())
	}
	if _, err := ParseMethod("wat"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestPaperCompositionFacade(t *testing.T) {
	c, err := PaperComposition("housing")
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 110 {
		t.Fatalf("housing total = %d", c.Total())
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	orig, _ := GenerateDataset("adult", 100, 11)
	attrs, _ := ProtectedAttributes("adult")
	res, err := Optimize(orig, attrs, OptimizeOptions{
		Dataset:     "adult",
		Generations: 25,
		Seed:        11,
		Workers:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Population) != 86 {
		t.Fatalf("population = %d, want 86", len(res.Population))
	}
	if res.Best.Eval.Score <= 0 {
		t.Fatalf("best score = %v", res.Best.Eval.Score)
	}
	if res.Best.Eval.Score != res.Population[0].Eval.Score {
		t.Fatal("best is not population[0]")
	}
	if len(res.History) != 25 {
		t.Fatalf("history = %d", len(res.History))
	}
}

func TestOptimizeWithExplicitSeeds(t *testing.T) {
	orig, _ := GenerateDataset("flare", 80, 13)
	attrs, _ := ProtectedAttributes("flare")
	idx, _ := orig.Schema().Indices(attrs...)

	var seeds []*Dataset
	for _, spec := range []string{"micro:k=3", "top:q=0.2", "pram:theta=0.8", "recode:depth=2"} {
		m, _ := ParseMethod(spec)
		masked, err := m.Protect(orig, idx, newTestRNG())
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, masked)
	}
	res, err := Optimize(orig, attrs, OptimizeOptions{
		Seeds:       seeds,
		Aggregator:  "mean",
		Generations: 15,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Population) != 4 {
		t.Fatalf("population = %d", len(res.Population))
	}
}

func TestOptimizeValidation(t *testing.T) {
	orig, _ := GenerateDataset("flare", 50, 17)
	attrs, _ := ProtectedAttributes("flare")
	if _, err := Optimize(orig, attrs, OptimizeOptions{}); err == nil {
		t.Error("missing Dataset and Seeds accepted")
	}
	if _, err := Optimize(orig, attrs, OptimizeOptions{Seeds: []*Dataset{orig}}); err == nil {
		t.Error("single seed accepted")
	}
	if _, err := Optimize(orig, []string{"GHOST"}, OptimizeOptions{Dataset: "flare"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Optimize(orig, attrs, OptimizeOptions{Dataset: "flare", Aggregator: "median"}); err == nil {
		t.Error("unknown aggregator accepted")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	rep, err := RunExperiment(ExperimentSpec{
		Dataset:     "german",
		Rows:        90,
		Generations: 20,
		Seed:        19,
		InitWorkers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Initial) != 104 {
		t.Fatalf("initial = %d", len(rep.Initial))
	}
}

func TestNewEvaluatorAndEngineFacade(t *testing.T) {
	orig, _ := GenerateDataset("german", 70, 23)
	attrs, _ := ProtectedAttributes("german")
	eval, err := NewEvaluator(orig, attrs, EvaluatorConfig{Aggregator: Mean{}})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := orig.Schema().Indices(attrs...)
	m, _ := ParseMethod("pram:theta=0.7")
	a, err := m.Protect(orig, idx, newTestRNG())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Protect(orig, idx, newTestRNG())
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(eval, []*Individual{NewIndividual(a, "a"), NewIndividual(b, "b")},
		EngineConfig{Generations: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 10 {
		t.Fatalf("generations = %d", res.Generations)
	}
}
