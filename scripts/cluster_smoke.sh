#!/usr/bin/env bash
# Two-process cluster smoke test: boot an evoprotd coordinator and an
# evoprotd worker as separate OS processes, drive one small job through
# the coordinator's public API with curl, and shut both down cleanly.
# This is the cheapest end-to-end proof that the lease protocol works
# across a real process boundary — everything finer-grained (fencing,
# expiry, determinism) lives in go test.
set -euo pipefail

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
COORD_PID=""
WORKER_PID=""

cleanup() {
  # Worker first, coordinator second — the order real deployments drain.
  [ -n "$WORKER_PID" ] && kill -INT "$WORKER_PID" 2>/dev/null && wait "$WORKER_PID" 2>/dev/null || true
  [ -n "$COORD_PID" ] && kill -INT "$COORD_PID" 2>/dev/null && wait "$COORD_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== building evoprotd"
go build -o "$WORKDIR/evoprotd" ./cmd/evoprotd

echo "== starting coordinator on :$PORT"
"$WORKDIR/evoprotd" -role coordinator -addr "127.0.0.1:${PORT}" \
  -data "$WORKDIR/data" -checkpoint-every 5 >"$WORKDIR/coord.log" 2>&1 &
COORD_PID=$!

for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$COORD_PID" 2>/dev/null; then
    echo "coordinator died:"; cat "$WORKDIR/coord.log"; exit 1
  fi
  sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q '"role":"coordinator"' || {
  echo "healthz did not report the coordinator role"; exit 1
}

echo "== starting worker"
"$WORKDIR/evoprotd" -role worker -coordinator "$BASE" -name smoke-w1 \
  -workers 1 -checkpoint-every 5 >"$WORKDIR/worker.log" 2>&1 &
WORKER_PID=$!

echo "== submitting job"
JOB=$(curl -sf -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
  -d '{"dataset":"flare","rows":60,"generations":15,"islands":2,"migrate_every":5,"seed":3}')
ID=$(printf '%s' "$JOB" | sed -n 's/.*"id":[[:space:]]*"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "no job id in response: $JOB"; exit 1; }
echo "   job $ID accepted"

echo "== waiting for completion"
STATE=""
for _ in $(seq 1 600); do
  STATUS=$(curl -sf "$BASE/v1/jobs/$ID")
  STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state":[[:space:]]*"\([^"]*\)".*/\1/p')
  case "$STATE" in
    done) break ;;
    failed|cancelled) echo "job ended as $STATE: $STATUS"
      cat "$WORKDIR/coord.log" "$WORKDIR/worker.log"; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATE" = "done" ] || { echo "job never finished (last state: $STATE)"; exit 1; }

curl -sf "$BASE/v1/jobs/$ID/result" | grep -q '"dataset_csv"' || {
  echo "result is missing the protected dataset"; exit 1
}

echo "== smoke test passed: job $ID ran through a worker lease across two processes"
