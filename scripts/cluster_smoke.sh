#!/usr/bin/env bash
# Two-process cluster smoke test: boot an evoprotd coordinator and an
# evoprotd worker as separate OS processes, drive one small job through
# the coordinator's public API with curl, and shut both down cleanly.
# The whole exercise runs twice — once over the durable filesystem store
# and once over the in-memory store — so both persistence backends are
# proven across a real process boundary. Everything finer-grained
# (fencing, expiry, determinism) lives in go test.
#
# Every curl goes through the `api` helper, which fails the script with
# the offending URL and body the moment any endpoint answers non-2xx.
set -euo pipefail

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
COORD_PID=""
WORKER_PID=""

stop_processes() {
  # Worker first, coordinator second — the order real deployments drain.
  [ -n "$WORKER_PID" ] && kill -INT "$WORKER_PID" 2>/dev/null && wait "$WORKER_PID" 2>/dev/null || true
  [ -n "$COORD_PID" ] && kill -INT "$COORD_PID" 2>/dev/null && wait "$COORD_PID" 2>/dev/null || true
  WORKER_PID=""
  COORD_PID=""
}

cleanup() {
  stop_processes
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

# api METHOD PATH [JSON_BODY] — curl that prints the response body on
# success and fails the script (non-2xx or transport error) with context.
api() {
  local method="$1" path="$2" body="${3:-}" out
  local args=(-sS --fail-with-body -X "$method" "$BASE$path")
  [ -n "$body" ] && args+=(-H 'Content-Type: application/json' -d "$body")
  if ! out=$(curl "${args[@]}" 2>&1); then
    echo "FAIL: $method $BASE$path answered non-2xx:" >&2
    echo "$out" >&2
    [ -f "$WORKDIR/coord.log" ] && { echo "-- coordinator log:" >&2; cat "$WORKDIR/coord.log" >&2; }
    [ -f "$WORKDIR/worker.log" ] && { echo "-- worker log:" >&2; cat "$WORKDIR/worker.log" >&2; }
    exit 1
  fi
  printf '%s' "$out"
}

echo "== building evoprotd"
go build -o "$WORKDIR/evoprotd" ./cmd/evoprotd

run_smoke() {
  local store="$1"

  echo "== starting coordinator on :$PORT (store: $store)"
  "$WORKDIR/evoprotd" -role coordinator -addr "127.0.0.1:${PORT}" \
    -store "$store" -checkpoint-every 5 >"$WORKDIR/coord.log" 2>&1 &
  COORD_PID=$!

  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$COORD_PID" 2>/dev/null; then
      echo "coordinator died:"; cat "$WORKDIR/coord.log"; exit 1
    fi
    sleep 0.1
  done
  api GET /healthz | grep -q '"role":"coordinator"' || {
    echo "healthz did not report the coordinator role"; exit 1
  }

  echo "== starting worker"
  "$WORKDIR/evoprotd" -role worker -coordinator "$BASE" -name smoke-w1 \
    -workers 1 -checkpoint-every 5 >"$WORKDIR/worker.log" 2>&1 &
  WORKER_PID=$!

  echo "== submitting job"
  JOB=$(api POST /v1/jobs '{"dataset":"flare","rows":60,"generations":15,"islands":2,"migrate_every":5,"seed":3}')
  ID=$(printf '%s' "$JOB" | sed -n 's/.*"id":[[:space:]]*"\([^"]*\)".*/\1/p')
  [ -n "$ID" ] || { echo "no job id in response: $JOB"; exit 1; }
  echo "   job $ID accepted"

  echo "== waiting for completion"
  STATE=""
  for _ in $(seq 1 600); do
    STATUS=$(api GET "/v1/jobs/$ID")
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state":[[:space:]]*"\([^"]*\)".*/\1/p')
    case "$STATE" in
      done) break ;;
      failed|cancelled) echo "job ended as $STATE: $STATUS"
        cat "$WORKDIR/coord.log" "$WORKDIR/worker.log"; exit 1 ;;
    esac
    sleep 0.1
  done
  [ "$STATE" = "done" ] || { echo "job never finished (last state: $STATE)"; exit 1; }

  api GET "/v1/jobs/$ID/result" | grep -q '"dataset_csv"' || {
    echo "result is missing the protected dataset"; exit 1
  }

  stop_processes
  echo "== store $store passed: job $ID ran through a worker lease across two processes"
}

run_smoke "fs:$WORKDIR/data"
run_smoke mem

echo "== smoke test passed: fs and mem stores both served a cluster job"
