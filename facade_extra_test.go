package evoprot

// Tests for the facade surface added beyond the core pipeline: pareto
// helpers, renderers, extended aggregators, and checkpoint resume.

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestAggregatorByNameFacade(t *testing.T) {
	for spec, want := range map[string]string{
		"mean":         "mean",
		"max":          "max",
		"euclidean":    "euclidean",
		"weighted:0.8": "weighted(0.80)",
	} {
		agg, err := AggregatorByName(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if agg.Name() != want {
			t.Errorf("%s -> %q, want %q", spec, agg.Name(), want)
		}
	}
	if _, err := AggregatorByName("harmonic"); err == nil {
		t.Error("unknown aggregator accepted")
	}
}

func TestParetoFrontFacade(t *testing.T) {
	pairs := []Pair{{IL: 10, DR: 40}, {IL: 20, DR: 20}, {IL: 15, DR: 45}, {IL: 40, DR: 10}}
	front := ParetoFront(pairs)
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	hv, err := Hypervolume(pairs, Pair{IL: 100, DR: 100})
	if err != nil {
		t.Fatal(err)
	}
	if hv <= 0 || hv >= 100*100 {
		t.Fatalf("hypervolume = %v", hv)
	}
	// Adding a dominating point grows the hypervolume.
	hv2, err := Hypervolume(append(pairs, Pair{IL: 5, DR: 5}), Pair{IL: 100, DR: 100})
	if err != nil {
		t.Fatal(err)
	}
	if hv2 <= hv {
		t.Fatalf("hypervolume did not grow: %v -> %v", hv, hv2)
	}
	// A degenerate reference bounds no box.
	if _, err := Hypervolume(pairs, Pair{}); err == nil {
		t.Fatal("degenerate reference accepted")
	}
}

func TestRenderPairsFacade(t *testing.T) {
	initial := []Pair{{IL: 30, DR: 60}, {IL: 50, DR: 40}}
	final := []Pair{{IL: 25, DR: 28}}
	out := RenderPairs(initial, final, 50, 12)
	if !strings.Contains(out, "o=initial (2)") || !strings.Contains(out, "*=final (1)") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestRenderEvolutionAndDispersionFacade(t *testing.T) {
	orig, _ := GenerateDataset("flare", 70, 3)
	attrs, _ := ProtectedAttributes("flare")
	res, err := Optimize(orig, attrs, OptimizeOptions{
		Dataset: "flare", Generations: 8, Seed: 3, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxS := make([]float64, len(res.History))
	meanS := make([]float64, len(res.History))
	minS := make([]float64, len(res.History))
	for i, gs := range res.History {
		maxS[i], meanS[i], minS[i] = gs.Max, gs.Mean, gs.Min
	}
	evo := RenderEvolution(maxS, meanS, minS, 60, 12)
	if !strings.Contains(evo, "M=max") {
		t.Fatalf("evolution render incomplete:\n%s", evo)
	}
	disp := RenderDispersion(res.Population, 60, 12)
	if !strings.Contains(disp, "*=population (104)") {
		t.Fatalf("dispersion render incomplete:\n%s", disp)
	}
}

func TestResumeEngineFacade(t *testing.T) {
	orig, _ := GenerateDataset("german", 80, 21)
	attrNames, _ := ProtectedAttributes("german")
	eval, err := NewEvaluator(orig, attrNames, EvaluatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	attrs, _ := orig.Schema().Indices(attrNames...)
	var seeds []*Individual
	for i, spec := range []string{"micro:k=3", "pram:theta=0.8", "rankswap:p=8", "top:q=0.15"} {
		m, _ := ParseMethod(spec)
		masked, err := m.Protect(orig, attrs, newTestRNG())
		if err != nil {
			t.Fatal(err)
		}
		_ = i
		seeds = append(seeds, NewIndividual(masked, spec))
	}
	engine, err := NewEngine(eval, seeds, EngineConfig{Generations: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeEngine(eval, &buf, EngineConfig{Generations: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Generation() != 10 {
		t.Fatalf("resumed generation = %d", resumed.Generation())
	}
	res, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 20 {
		t.Fatalf("total history = %d, want 20", len(res.History))
	}
}

func TestOptimizeWithExtendedAggregator(t *testing.T) {
	orig, _ := GenerateDataset("adult", 80, 17)
	attrs, _ := ProtectedAttributes("adult")
	res, err := Optimize(orig, attrs, OptimizeOptions{
		Dataset: "adult", Aggregator: "weighted:0.7", Generations: 10, Seed: 17, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best.Eval
	want := 0.7*best.IL + 0.3*best.DR
	if diff := best.Score - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("score %v != weighted combination %v", best.Score, want)
	}
}
