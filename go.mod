module evoprot

go 1.24
