package evoprot

// One benchmark per figure and in-text table of the paper's evaluation
// (§3), plus the ablation benches called out in DESIGN.md. Benchmarks run
// at reduced scale (fewer records and generations than the paper) so the
// suite completes in minutes; cmd/experiments -full regenerates everything
// at paper scale. Custom metrics attach the quantities the paper reports —
// improvement percentages, population balance, timing shares — to the
// standard ns/op output.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"evoprot/internal/core"
	"evoprot/internal/datagen"
	"evoprot/internal/dataset"
	"evoprot/internal/experiment"
	"evoprot/internal/score"
)

// benchRows/benchGens set the reduced benchmark scale.
const (
	benchRows = 200
	benchGens = 60
	benchSeed = 42
)

func benchSpec(dataset, agg string, remove float64) experiment.Spec {
	return experiment.Spec{
		Dataset:        dataset,
		Rows:           benchRows,
		Aggregator:     agg,
		RemoveBestFrac: remove,
		Generations:    benchGens,
		Seed:           benchSeed,
		InitWorkers:    runtime.GOMAXPROCS(0),
	}
}

// runDispersion benchmarks an experiment run and reports the dispersion
// statistics of the corresponding figure: initial/final balance |IL-DR|.
func runDispersion(b *testing.B, spec experiment.Spec) {
	b.Helper()
	var rep *experiment.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiment.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(experiment.Balance(rep.Initial), "balance_init")
	b.ReportMetric(experiment.Balance(rep.Final), "balance_final")
	b.ReportMetric(float64(len(rep.Final)), "individuals")
}

// runEvolution benchmarks an experiment run and reports the evolution
// statistics of the corresponding figure: the max/mean/min improvements.
func runEvolution(b *testing.B, spec experiment.Spec) {
	b.Helper()
	var rep *experiment.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiment.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.ImpMax, "imp_max_%")
	b.ReportMetric(rep.ImpMean, "imp_mean_%")
	b.ReportMetric(rep.ImpMin, "imp_min_%")
}

// --- Experiment 1: Eq. 1 (mean) fitness — Figures 1-8 ---

func BenchmarkFig01_AdultDispersionMean(b *testing.B) {
	runDispersion(b, benchSpec("adult", "mean", 0))
}
func BenchmarkFig02_AdultEvolutionMean(b *testing.B) { runEvolution(b, benchSpec("adult", "mean", 0)) }
func BenchmarkFig03_HousingDispersionMean(b *testing.B) {
	runDispersion(b, benchSpec("housing", "mean", 0))
}
func BenchmarkFig04_HousingEvolutionMean(b *testing.B) {
	runEvolution(b, benchSpec("housing", "mean", 0))
}
func BenchmarkFig05_GermanDispersionMean(b *testing.B) {
	runDispersion(b, benchSpec("german", "mean", 0))
}
func BenchmarkFig06_GermanEvolutionMean(b *testing.B) {
	runEvolution(b, benchSpec("german", "mean", 0))
}
func BenchmarkFig07_FlareDispersionMean(b *testing.B) {
	runDispersion(b, benchSpec("flare", "mean", 0))
}
func BenchmarkFig08_FlareEvolutionMean(b *testing.B) { runEvolution(b, benchSpec("flare", "mean", 0)) }

// --- Experiment 2: Eq. 2 (max) fitness — Figures 9-16 ---

func BenchmarkFig09_AdultDispersionMax(b *testing.B) { runDispersion(b, benchSpec("adult", "max", 0)) }
func BenchmarkFig10_AdultEvolutionMax(b *testing.B)  { runEvolution(b, benchSpec("adult", "max", 0)) }
func BenchmarkFig11_HousingDispersionMax(b *testing.B) {
	runDispersion(b, benchSpec("housing", "max", 0))
}
func BenchmarkFig12_HousingEvolutionMax(b *testing.B) {
	runEvolution(b, benchSpec("housing", "max", 0))
}
func BenchmarkFig13_GermanDispersionMax(b *testing.B) {
	runDispersion(b, benchSpec("german", "max", 0))
}
func BenchmarkFig14_GermanEvolutionMax(b *testing.B) { runEvolution(b, benchSpec("german", "max", 0)) }
func BenchmarkFig15_FlareDispersionMax(b *testing.B) { runDispersion(b, benchSpec("flare", "max", 0)) }
func BenchmarkFig16_FlareEvolutionMax(b *testing.B)  { runEvolution(b, benchSpec("flare", "max", 0)) }

// --- Experiment 3: robustness on Flare — Figures 17-20 ---

func BenchmarkFig17_FlareRobust5Dispersion(b *testing.B) {
	runDispersion(b, benchSpec("flare", "max", 0.05))
}
func BenchmarkFig18_FlareRobust10Dispersion(b *testing.B) {
	runDispersion(b, benchSpec("flare", "max", 0.10))
}
func BenchmarkFig19_FlareRobust5Evolution(b *testing.B) {
	runEvolution(b, benchSpec("flare", "max", 0.05))
}
func BenchmarkFig20_FlareRobust10Evolution(b *testing.B) {
	runEvolution(b, benchSpec("flare", "max", 0.10))
}

// --- In-text table: experiment 1 and 2 improvement percentages ---

func benchImprovementTable(b *testing.B, agg string) {
	b.Helper()
	for _, ds := range datagen.Names() {
		ds := ds
		b.Run(ds, func(b *testing.B) {
			var rep *experiment.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = experiment.Run(benchSpec(ds, agg, 0))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ImpMax, "imp_max_%")
			b.ReportMetric(rep.ImpMean, "imp_mean_%")
			b.ReportMetric(rep.ImpMin, "imp_min_%")
		})
	}
}

func BenchmarkTableExp1Improvements(b *testing.B) { benchImprovementTable(b, "mean") }
func BenchmarkTableExp2Improvements(b *testing.B) { benchImprovementTable(b, "max") }

// --- In-text table: robustness min-score gaps (§3.3) ---

func BenchmarkTableRobustnessGap(b *testing.B) {
	var gap5, gap10 float64
	for i := 0; i < b.N; i++ {
		full, err := experiment.Run(benchSpec("flare", "max", 0))
		if err != nil {
			b.Fatal(err)
		}
		r5, err := experiment.Run(benchSpec("flare", "max", 0.05))
		if err != nil {
			b.Fatal(err)
		}
		r10, err := experiment.Run(benchSpec("flare", "max", 0.10))
		if err != nil {
			b.Fatal(err)
		}
		gap5 = r5.FinalMin - full.FinalMin
		gap10 = r10.FinalMin - full.FinalMin
	}
	b.ReportMetric(gap5, "gap5_pts")
	b.ReportMetric(gap10, "gap10_pts")
}

// --- In-text table: generation timing (§3.2) ---
//
// The paper reports 120.34s per mutation generation and 242.48s per
// crossover generation, >99.9% of it in fitness evaluation. Absolute times
// reflect 2012 hardware; the shape to reproduce is the ~2x ratio (two
// offspring evaluated instead of one) and the evaluation share.

func benchGeneration(b *testing.B, op string) {
	b.Helper()
	eng := newBenchEngine(b, op)
	b.ResetTimer()
	evalShare := 0.0
	for i := 0; i < b.N; i++ {
		gs := eng.Step()
		if gs.TotalTime > 0 {
			evalShare = float64(gs.EvalTime) / float64(gs.TotalTime)
		}
	}
	b.ReportMetric(100*evalShare, "eval_share_%")
}

func BenchmarkGenerationMutation(b *testing.B)  { benchGeneration(b, "mutation") }
func BenchmarkGenerationCrossover(b *testing.B) { benchGeneration(b, "crossover") }

// BenchmarkTimingTable reports the mutation/crossover cost ratio directly.
func BenchmarkTimingTable(b *testing.B) {
	mut := newBenchEngine(b, "mutation")
	cross := newBenchEngine(b, "crossover")
	b.ResetTimer()
	var mutNs, crossNs float64
	for i := 0; i < b.N; i++ {
		gm := mut.Step()
		gc := cross.Step()
		mutNs = float64(gm.TotalTime.Nanoseconds())
		crossNs = float64(gc.TotalTime.Nanoseconds())
	}
	if mutNs > 0 {
		b.ReportMetric(crossNs/mutNs, "cross/mut_ratio")
	}
}

func newBenchEngine(b *testing.B, forceOp string) *core.Engine {
	b.Helper()
	orig := datagen.MustByName("flare", benchRows, benchSeed)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, err := orig.Schema().Indices(names...)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := score.NewEvaluator(orig, attrs, score.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pop, err := experiment.BuildPopulation(orig, attrs, "flare", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(eval, pop, core.Config{
		Generations: 1 << 30, // stepped manually
		Seed:        benchSeed,
		ForceOp:     forceOp,
		InitWorkers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationSelection compares the selection policies: the literal
// Eq. 3 (raw-proportional) vs the paper's described semantics
// (inverse-proportional) vs rank-based.
func BenchmarkAblationSelection(b *testing.B) {
	for _, sel := range []string{"inverse", "raw", "rank", "uniform"} {
		sel := sel
		b.Run(sel, func(b *testing.B) {
			spec := benchSpec("flare", "max", 0)
			spec.Selection = sel
			var rep *experiment.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = experiment.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ImpMean, "imp_mean_%")
			b.ReportMetric(rep.FinalMin, "final_min")
		})
	}
}

// BenchmarkAblationCrowding compares the paper's parent-index pairing with
// classic nearest-parent deterministic crowding.
func BenchmarkAblationCrowding(b *testing.B) {
	for _, cr := range []core.CrowdingPolicy{core.CrowdParentIndex, core.CrowdNearestParent} {
		cr := cr
		b.Run(cr.String(), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				orig := datagen.MustByName("flare", benchRows, benchSeed)
				names, _ := datagen.ProtectedAttrs("flare")
				attrs, _ := orig.Schema().Indices(names...)
				eval, err := score.NewEvaluator(orig, attrs, score.Config{})
				if err != nil {
					b.Fatal(err)
				}
				pop, err := experiment.BuildPopulation(orig, attrs, "flare", benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := core.NewEngine(eval, pop, core.Config{
					Generations: benchGens,
					Seed:        benchSeed,
					Crowding:    cr,
					ForceOp:     "crossover",
					InitWorkers: runtime.GOMAXPROCS(0),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				final = res.History[len(res.History)-1].Mean
			}
			b.ReportMetric(final, "final_mean")
		})
	}
}

// BenchmarkAblationAggregator quantifies the §3.2 claim: Eq. 2 (max)
// produces more balanced final populations than Eq. 1 (mean).
func BenchmarkAblationAggregator(b *testing.B) {
	for _, agg := range []string{"mean", "max"} {
		agg := agg
		b.Run(agg, func(b *testing.B) {
			var rep *experiment.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = experiment.Run(benchSpec("flare", agg, 0))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(experiment.Balance(rep.Final), "balance_final")
		})
	}
}

// BenchmarkAblationCategoryCount quantifies the paper's §3.2/§4
// observation that more categories make balancing IL and DR easier: Adult
// (16/7/14 categories) should end more balanced than German (5/6/6).
func BenchmarkAblationCategoryCount(b *testing.B) {
	for _, ds := range []string{"german", "adult"} {
		ds := ds
		b.Run(ds, func(b *testing.B) {
			var rep *experiment.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = experiment.Run(benchSpec(ds, "max", 0))
				if err != nil {
					b.Fatal(err)
				}
			}
			cards := 0.0
			orig := datagen.MustByName(ds, 10, 1)
			names, _ := datagen.ProtectedAttrs(ds)
			attrs, _ := orig.Schema().Indices(names...)
			for _, c := range attrs {
				cards += float64(orig.Schema().Attr(c).Cardinality())
			}
			b.ReportMetric(cards, "total_categories")
			b.ReportMetric(experiment.Balance(rep.Final), "balance_final")
		})
	}
}

// BenchmarkAblationParallelEval measures the initial-population evaluation
// speedup from the worker pool.
func BenchmarkAblationParallelEval(b *testing.B) {
	orig := datagen.MustByName("flare", benchRows, benchSeed)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, _ := orig.Schema().Indices(names...)
	eval, err := score.NewEvaluator(orig, attrs, score.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pop, err := experiment.BuildPopulation(orig, attrs, "flare", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]*dataset.Dataset, len(pop))
	for i, ind := range pop {
		data[i] = ind.Data
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvaluateAll(context.Background(), data, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks: the fitness measures themselves ---

func BenchmarkEvaluateSingle(b *testing.B) {
	orig := datagen.MustByName("flare", benchRows, benchSeed)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, _ := orig.Schema().Indices(names...)
	eval, err := score.NewEvaluator(orig, attrs, score.Config{})
	if err != nil {
		b.Fatal(err)
	}
	masked := orig.Clone()
	masked.Set(0, attrs[0], (orig.At(0, attrs[0])+1)%orig.Schema().Attr(attrs[0]).Cardinality())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(masked); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Delta evaluation: before/after at paper scale (rows 0 selects the
// paper's record count, 1066 for Flare) ---
//
// BenchmarkEvaluateFullPaperScale is the "before": a mutation offspring
// re-scored from scratch. BenchmarkEvaluateDeltaPaperScale is the
// "after": the same offspring scored by advancing the parent's
// incremental state by the single changed cell. The acceptance bar for
// the delta subsystem is >= 5x; the measured gap is orders of magnitude
// (results are bit-identical — see the equivalence property tests in
// internal/score and internal/core).

// paperScaleDeltaFixture builds a paper-scale evaluator, a masked parent
// with its prepared delta state, and a single-cell mutation child.
func paperScaleDeltaFixture(b *testing.B) (*score.Evaluator, score.Evaluation, *score.DeltaState, *dataset.Dataset, []dataset.CellChange) {
	b.Helper()
	orig := datagen.MustByName("flare", 0, benchSeed)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, _ := orig.Schema().Indices(names...)
	eval, err := score.NewEvaluator(orig, attrs, score.Config{})
	if err != nil {
		b.Fatal(err)
	}
	parent := orig.Clone()
	// A realistic parent: a few hundred cells moved off the original.
	for i := 0; i < 300; i++ {
		row, col := (i*37)%orig.Rows(), attrs[i%len(attrs)]
		card := orig.Schema().Attr(col).Cardinality()
		parent.Set(row, col, (parent.At(row, col)+1+i%(card-1))%card)
	}
	parentEval, err := eval.Evaluate(parent)
	if err != nil {
		b.Fatal(err)
	}
	state, err := eval.Prepare(parent)
	if err != nil {
		b.Fatal(err)
	}

	child := parent.Clone()
	col := attrs[0]
	card := orig.Schema().Attr(col).Cardinality()
	old := child.At(7, col)
	child.Set(7, col, (old+1)%card)
	changes := []dataset.CellChange{{Row: 7, Col: col, Old: old, New: (old + 1) % card}}
	return eval, parentEval, state, child, changes
}

func BenchmarkEvaluateFullPaperScale(b *testing.B) {
	eval, _, _, child, _ := paperScaleDeltaFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(child); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateDeltaPaperScale(b *testing.B) {
	eval, parentEval, state, child, changes := paperScaleDeltaFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eval.EvaluateDelta(parentEval, state, child, changes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateDeltaSpeedup reports the measured full/delta ratio for
// a paper-scale mutation offspring directly as a custom metric.
func BenchmarkEvaluateDeltaSpeedup(b *testing.B) {
	eval, parentEval, state, child, changes := paperScaleDeltaFixture(b)
	var full, delta time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := eval.Evaluate(child); err != nil {
			b.Fatal(err)
		}
		full += time.Since(start)
		start = time.Now()
		if _, _, err := eval.EvaluateDelta(parentEval, state, child, changes); err != nil {
			b.Fatal(err)
		}
		delta += time.Since(start)
	}
	if delta > 0 {
		b.ReportMetric(float64(full)/float64(delta), "full/delta_ratio")
	}
}

// --- Generation-batch evaluation: the apply/undo offspring pool ---
//
// The delta path above still clones the parent's whole incremental state
// per offspring. EvaluateBatch scores a generation's offspring against
// the shared parent states with apply/undo instead; compare allocs/op
// with BenchmarkEvaluateDeltaPaperScale — the batch steady state
// allocates nothing proportional to the file.

// paperScaleBatchFixture shapes paperScaleDeltaFixture's parent into
// nGroups batch groups of two narrow offspring each (a crossover-shaped
// generation repeated); each group gets its own state clone, as groups
// are the unit of parallelism.
func paperScaleBatchFixture(b *testing.B, nGroups int) (*score.Evaluator, []score.BatchGroup) {
	b.Helper()
	eval, parentEval, state, child, changes := paperScaleDeltaFixture(b)
	groups := make([]score.BatchGroup, nGroups)
	for g := range groups {
		st := state
		if g > 0 {
			st = state.Clone()
		}
		groups[g] = score.BatchGroup{
			Parent: parentEval,
			State:  st,
			Offspring: []score.BatchOffspring{
				{Child: child, Changes: changes},
				{Child: child, Changes: changes},
			},
		}
	}
	return eval, groups
}

func BenchmarkEvaluateBatchPaperScale(b *testing.B) {
	eval, groups := paperScaleBatchFixture(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eval.EvaluateBatch(groups, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateBatchParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	eval, groups := paperScaleBatchFixture(b, workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eval.EvaluateBatch(groups, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateBatchSpeedup reports the per-offspring-delta vs batch
// ratio for one crossover-shaped generation (two narrow offspring of one
// parent) directly as a custom metric.
func BenchmarkEvaluateBatchSpeedup(b *testing.B) {
	eval, parentEval, state, child, changes := paperScaleDeltaFixture(b)
	groups := []score.BatchGroup{{
		Parent: parentEval,
		State:  state,
		Offspring: []score.BatchOffspring{
			{Child: child, Changes: changes},
			{Child: child, Changes: changes},
		},
	}}
	var delta, batch time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for k := 0; k < len(groups[0].Offspring); k++ {
			if _, _, err := eval.EvaluateDelta(parentEval, state, child, changes); err != nil {
				b.Fatal(err)
			}
		}
		delta += time.Since(start)
		start = time.Now()
		if err := eval.EvaluateBatch(groups, 1); err != nil {
			b.Fatal(err)
		}
		batch += time.Since(start)
	}
	if batch > 0 {
		b.ReportMetric(float64(delta)/float64(batch), "delta/batch_ratio")
	}
}

// BenchmarkEvaluateBatchGenerations reports end-to-end engine throughput
// (gens/s) with the batch path on — the number the generation-timing
// benches express per-step, as a rate.
func BenchmarkEvaluateBatchGenerations(b *testing.B) {
	eng := newBenchEngine(b, "crossover")
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	if el := time.Since(start); el > 0 {
		b.ReportMetric(float64(b.N)/el.Seconds(), "gens/s")
	}
}

func BenchmarkBuildPopulation(b *testing.B) {
	orig := datagen.MustByName("flare", benchRows, benchSeed)
	names, _ := datagen.ProtectedAttrs("flare")
	attrs, _ := orig.Schema().Indices(names...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BuildPopulation(orig, attrs, "flare", benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}
