package evoprot

import "math/rand/v2"

// newTestRNG returns a fixed-seed RNG for facade tests; a fresh stream per
// call keeps maskings independent of call order.
var testRNGSeed uint64

func newTestRNG() *rand.Rand {
	testRNGSeed++
	return rand.New(rand.NewPCG(testRNGSeed, 0xabcdef))
}
